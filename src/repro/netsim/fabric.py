"""Message fabrics: the glue between links, routing and executors.

Two fabrics are provided.

:class:`Fabric`
    General-graph fabric.  Each undirected edge of a ``networkx`` host
    graph gets two :class:`~repro.netsim.links.LinkPipe` instances (one
    per direction).  Executors move a message hop by hop, calling
    :meth:`Fabric.hop` at each intermediate node; the fabric handles
    slot allocation and returns the arrival time at the next node.

:class:`LineFabric`
    Fast path for linear-array hosts — the workhorse of algorithm
    OVERLAP, which (after the Fact-3 embedding) always runs on an array.
    Positions are ``0..n-1``; link ``j`` connects positions ``j`` and
    ``j+1``.  The fabric exposes whole-route sends along the array with
    per-link pipelining, which is what the executors actually need.

Graph hosts never reach an executor through :class:`Fabric` directly:
the Fact-3 embedding collapses every per-assignment route into the
induced array's flat ``link_delays``, so executors (and the dense
tier, which inlines the LinkPipe slot rule as three flat ints per
directed link) always see a :class:`LineFabric`-shaped host.
:class:`Fabric` remains the substrate for netsim-level routing and
fault-table tests on the original graph.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx

from repro.netsim.faults import LOST, FaultTables
from repro.netsim.links import LinkPipe
from repro.netsim.routing import DELAY_ATTR, Router


class Fabric:
    """Bidirectional pipelined fabric over an arbitrary connected graph."""

    def __init__(
        self, graph: nx.Graph, bandwidth: int = 1, delay_attr: str = DELAY_ATTR
    ) -> None:
        self.router = Router(graph, delay_attr)
        self.graph = graph
        self.bandwidth = bandwidth
        self._delay_attr = delay_attr
        self._pipes: dict[tuple[Hashable, Hashable], LinkPipe] = {}
        self._edge_dir: dict[tuple[Hashable, Hashable], tuple[int, int]] = {}
        self._faults: FaultTables | None = None
        # Flat per-(src, dst) memos over Router's per-source tables: the
        # executors ask for the same few routes millions of times, and a
        # single dict hit beats the router's two-level lookup.
        self._route_cache: dict[tuple[Hashable, Hashable], list[Hashable]] = {}
        self._delay_cache: dict[tuple[Hashable, Hashable], int] = {}
        # Last arrival handed out per directed link (monotone-delivery clamp).
        self._last_out: dict[tuple[Hashable, Hashable], int] = {}
        for idx, (u, v, data) in enumerate(graph.edges(data=True)):
            d = int(data[delay_attr])
            self._pipes[(u, v)] = LinkPipe(d, bandwidth)
            self._pipes[(v, u)] = LinkPipe(d, bandwidth)
            self._edge_dir[(u, v)] = (idx, 1)
            self._edge_dir[(v, u)] = (idx, -1)

    def pipe(self, u: Hashable, v: Hashable) -> LinkPipe:
        """The directed pipe from ``u`` to its neighbour ``v``."""
        try:
            return self._pipes[(u, v)]
        except KeyError:
            if u not in self.graph:
                hint = f"node {u!r} is not in the host graph"
            elif v not in self.graph:
                hint = f"node {v!r} is not in the host graph"
            else:
                neighbours = sorted(self.graph.neighbors(u), key=repr)
                hint = (
                    f"{u!r} has neighbours {neighbours}; multi-hop sends must "
                    f"follow Fabric.route({u!r}, {v!r}) edge by edge "
                    "(or use send_along)"
                )
            raise KeyError(f"({u},{v}) is not a link of the host: {hint}") from None

    def hop(self, u: Hashable, v: Hashable, t_ready: int) -> int:
        """Inject one pebble into link ``u -> v``; return arrival time."""
        return self.pipe(u, v).inject(t_ready)

    def attach_faults(self, tables: FaultTables | None) -> None:
        """Attach per-run fault tables consulted by :meth:`hop_faulty`.

        Link-fault targets are edge *indices* in the graph's edge
        enumeration order (the order pipes were built in).

        The route/delay memos are dropped: entries computed before the
        tables were attached know nothing about outage windows, and a
        stale cached route must never mask one (routes asked for with
        ``at=`` bypass the memos entirely while link faults are live).
        """
        self._faults = tables
        self._route_cache.clear()
        self._delay_cache.clear()

    def hop_faulty(self, u: Hashable, v: Hashable, t_ready: int):
        """Fault-aware :meth:`hop`: :data:`~repro.netsim.faults.LOST` on
        a dead link / one-shot drop, jitter-inflated arrival otherwise.

        Links are FIFO: a jitter window ending mid-stream must not let a
        later pebble overtake an earlier, jitter-inflated one — arrivals
        are clamped to stay monotone per directed link so downstream
        pipes never see a non-monotone ``t_ready``.
        """
        pipe = self.pipe(u, v)  # raises the annotated KeyError on non-links
        outcome = 0
        if self._faults is not None:
            idx, direction = self._edge_dir[(u, v)]
            outcome = self._faults.link_outcome(idx, direction, t_ready)
        if outcome is LOST:
            pipe.inject(t_ready)
            return LOST
        arrival = pipe.inject(t_ready) + outcome
        key = (u, v)
        prev = self._last_out.get(key, 0)
        if arrival < prev:
            arrival = prev
        else:
            self._last_out[key] = arrival
        return arrival

    def _down_edges(self, at: int) -> list[tuple[Hashable, Hashable]]:
        """Edges inside an outage window at time ``at`` (either
        direction down disqualifies the edge for routing)."""
        faults = self._faults
        if faults is None or not faults.has_link_faults():
            return []
        return [
            (u, v)
            for (u, v), (idx, direction) in self._edge_dir.items()
            if faults.is_link_down(idx, direction, at)
        ]

    def route(
        self, src: Hashable, dst: Hashable, at: int | None = None
    ) -> list[Hashable]:
        """Shortest-delay route as a node list.

        With ``at`` given and link faults attached, the route is
        computed fresh on the subgraph of links up at time ``at`` —
        never from the memo, which only describes the healthy topology.
        Raises ``networkx.NetworkXNoPath`` when outages disconnect the
        endpoints.
        """
        if at is not None:
            down = self._down_edges(at)
            if down:
                view = nx.restricted_view(self.graph, [], down)
                return nx.shortest_path(
                    view, src, dst, weight=self._delay_attr
                )
        key = (src, dst)
        path = self._route_cache.get(key)
        if path is None:
            path = self.router.path(src, dst)
            self._route_cache[key] = path
        return path

    def route_delay(
        self, src: Hashable, dst: Hashable, at: int | None = None
    ) -> int:
        """Sum of delays along :meth:`route` (uncontended transit time).

        ``at`` behaves as in :meth:`route`: fault-aware and uncached
        while any outage is scripted.
        """
        if at is not None:
            down = self._down_edges(at)
            if down:
                path = self.route(src, dst, at=at)
                return sum(
                    self.graph[u][v][self._delay_attr]
                    for u, v in zip(path, path[1:])
                )
        key = (src, dst)
        delay = self._delay_cache.get(key)
        if delay is None:
            delay = self.router.delay(src, dst)
            self._delay_cache[key] = delay
        return delay

    def send_along(self, path: Sequence[Hashable], t_ready: int) -> int:
        """Send one pebble along an explicit path, hop by hop, with no
        store-and-forward overhead beyond slot contention.

        This is a *closed-form* convenience for explicit schedules; the
        event-driven executors instead call :meth:`hop` per hop so that
        contention from interleaved traffic is modelled exactly.
        """
        t = t_ready
        for u, v in zip(path, path[1:]):
            t = self.hop(u, v, t)
        return t

    def reset(self) -> None:
        """Reset every pipe to idle (between repeated runs)."""
        for pipe in self._pipes.values():
            pipe.reset()
        self._last_out.clear()

    @property
    def total_injections(self) -> int:
        """Pebble-hops across all pipes (a bandwidth-usage metric)."""
        return sum(p.injected for p in self._pipes.values())

    def per_edge_injections(self) -> dict[tuple[Hashable, Hashable], int]:
        """Lifetime injections per *directed* edge ``(u, v)``.

        The per-link view of :attr:`total_injections` — which links a
        run actually saturated.  Only edges that carried at least one
        pebble appear.
        """
        return {
            edge: pipe.injected
            for edge, pipe in self._pipes.items()
            if pipe.injected
        }


class LineFabric:
    """Pipelined fabric specialised to a linear-array host.

    Parameters
    ----------
    link_delays:
        ``link_delays[j]`` is the delay of the link between positions
        ``j`` and ``j+1``; the array therefore has ``len(link_delays)+1``
        positions.
    bandwidth:
        Per-direction pebbles/step on every link.
    """

    RIGHT = +1
    LEFT = -1

    def __init__(self, link_delays: Sequence[int], bandwidth: int = 1) -> None:
        if any(d < 1 for d in link_delays):
            raise ValueError("all link delays must be >= 1")
        self.link_delays = [int(d) for d in link_delays]
        self.n = len(self.link_delays) + 1
        self.bandwidth = bandwidth
        self._right = [LinkPipe(d, bandwidth) for d in self.link_delays]
        self._left = [LinkPipe(d, bandwidth) for d in self.link_delays]
        self._faults: FaultTables | None = None
        # Last arrival handed out per directed link (monotone-delivery clamp).
        self._last_out: dict[tuple[int, int], int] = {}
        # Prefix sums of delays for O(1) distance queries.
        self._prefix = [0]
        for d in self.link_delays:
            self._prefix.append(self._prefix[-1] + d)

    def hop(self, pos: int, direction: int, t_ready: int) -> int:
        """Inject a pebble at ``pos`` heading ``direction`` (+1 right,
        -1 left); return its arrival time at the adjacent position."""
        if direction == self.RIGHT:
            return self._right[pos].inject(t_ready)
        if direction == self.LEFT:
            return self._left[pos - 1].inject(t_ready)
        raise ValueError(f"direction must be +1 or -1, got {direction}")

    def hop_many(self, pos: int, direction: int, t_ready: int, count: int) -> list[int]:
        """Inject ``count`` pebbles at ``pos`` heading ``direction``, all
        ready at ``t_ready`` (a whole-stream send); return their arrival
        times in injection order.  Identical slot assignment to ``count``
        :meth:`hop` calls, via :meth:`~repro.netsim.links.LinkPipe.inject_many`.
        """
        if direction == self.RIGHT:
            return self._right[pos].inject_many(t_ready, count)
        if direction == self.LEFT:
            return self._left[pos - 1].inject_many(t_ready, count)
        raise ValueError(f"direction must be +1 or -1, got {direction}")

    def attach_faults(self, tables: FaultTables | None) -> None:
        """Attach per-run fault tables consulted by :meth:`hop_faulty`."""
        self._faults = tables

    def hop_faulty(self, pos: int, direction: int, t_ready: int):
        """Fault-aware :meth:`hop`: returns :data:`~repro.netsim.faults.LOST`
        when the pebble enters a dead link (or eats a one-shot drop),
        and an arrival time inflated by any active jitter otherwise.

        Lost pebbles still occupy an injection slot — the sender spent
        the bandwidth even though the far end never sees the message.

        Links are FIFO: arrivals are clamped to stay monotone per
        directed link, so a jitter window ending mid-stream cannot let a
        later pebble's un-jittered arrival precede an earlier inflated
        one (which would feed non-monotone ``t_ready`` into downstream
        pipes and trip the :class:`~repro.netsim.links.LinkPipe`
        monotonicity assertion).
        """
        link = pos if direction == self.RIGHT else pos - 1
        outcome = 0
        if self._faults is not None:
            outcome = self._faults.link_outcome(link, direction, t_ready)
        if outcome is LOST:
            self.hop(pos, direction, t_ready)
            return LOST
        arrival = self.hop(pos, direction, t_ready) + outcome
        key = (link, direction)
        prev = self._last_out.get(key, 0)
        if arrival < prev:
            arrival = prev
        else:
            self._last_out[key] = arrival
        return arrival

    def distance(self, a: int, b: int) -> int:
        """Total (uncontended) delay between positions ``a`` and ``b``."""
        lo, hi = (a, b) if a <= b else (b, a)
        return self._prefix[hi] - self._prefix[lo]

    def total_delay(self) -> int:
        """Sum of all link delays (== n * d_ave up to rounding)."""
        return self._prefix[-1]

    def average_delay(self) -> float:
        """Average link delay d_ave of the array."""
        if not self.link_delays:
            return 0.0
        return self.total_delay() / len(self.link_delays)

    def max_delay(self) -> int:
        """Maximum link delay d_max of the array."""
        return max(self.link_delays, default=0)

    def reset(self) -> None:
        """Reset all pipes to idle (between repeated runs)."""
        for pipe in self._right:
            pipe.reset()
        for pipe in self._left:
            pipe.reset()
        self._last_out.clear()

    @property
    def total_injections(self) -> int:
        """Pebble-hops across both directions of every link."""
        return sum(p.injected for p in self._right) + sum(
            p.injected for p in self._left
        )

    def per_link_injections(self) -> list[tuple[int, int, int]]:
        """Lifetime injections per link: ``(link, rightward, leftward)``
        for each link ``j`` (joining positions ``j`` and ``j+1``).

        The per-link view of :attr:`total_injections`: a run's link
        occupancy profile, e.g. to spot the saturated boundary links an
        OVERLAP assignment concentrates traffic on.
        """
        return [
            (j, self._right[j].injected, self._left[j].injected)
            for j in range(len(self._right))
        ]
