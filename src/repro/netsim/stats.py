"""Run statistics shared by all executors.

A single mutable :class:`SimStats` instance is threaded through a run
and summarises everything the analysis layer needs: how long the run
took (``makespan``), how much computation happened (``pebbles``, with
``redundant`` counting recomputations beyond the first), and how much
communication happened (``messages`` end-to-end, ``pebble_hops`` per
link traversal).

The module is also the home of the shared percentile helpers: the
single :func:`percentile` implementation used by step-latency
reporting here, by :class:`~repro.telemetry.timeline.MetricsTimeline`
and by :class:`~repro.telemetry.service.ServiceMetrics`, plus the
*distribution extras* convention — an extras value shaped
``{"__dist__": True, "samples": [...]}`` whose samples concatenate
(never add) when stats from several runs are merged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def percentile(values, q: float):
    """The ``q``-quantile (0..1) of ``values``, linearly interpolated.

    ``None`` on an empty sequence — a latency you never measured is not
    zero, and the benchmark gates must fail loudly on it.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    vs = sorted(values)
    if not vs:
        return None
    pos = (len(vs) - 1) * q
    lo = math.floor(pos)
    hi = math.ceil(pos)
    return vs[lo] + (vs[hi] - vs[lo]) * (pos - lo)


def make_dist(samples) -> dict:
    """Wrap raw samples as a distribution-valued extras entry.

    Distribution extras survive :meth:`SimStats.merge` by sample
    concatenation — the percentile of a merged distribution is computed
    over the union of samples, which adding (the numeric merge rule)
    would silently corrupt.
    """
    return {"__dist__": True, "samples": list(samples)}


def is_dist(value) -> bool:
    """Whether ``value`` is a distribution-valued extras entry."""
    return isinstance(value, dict) and value.get("__dist__") is True


def dist_summary(samples) -> dict:
    """``{count, mean, p50, p95, p99}`` view of a sample list.

    All fields ``None``-free only when samples exist; an empty
    distribution reports ``count=0`` and ``None`` percentiles so a
    missing measurement can never masquerade as a zero latency.
    """
    samples = list(samples)
    n = len(samples)
    return {
        "count": n,
        "mean": (sum(samples) / n) if n else None,
        "p50": percentile(samples, 0.50),
        "p95": percentile(samples, 0.95),
        "p99": percentile(samples, 0.99),
    }


def latencies_from_completions(step_done) -> list[int]:
    """Per-step latencies from a row-completion-time array.

    ``step_done[t]`` is the time the *last* pebble of guest row ``t``
    finished (``step_done[0] == 0``: the inputs are free).  The list of
    consecutive differences is the per-step latency distribution whose
    tail (p95/p99) the racing/stealing policies target; its sum is the
    makespan, so mean step latency equals the classic slowdown.
    """
    return [
        step_done[t] - step_done[t - 1] for t in range(1, len(step_done))
    ]


def _extras_kind(value) -> str:
    """Merge-kind of one extras value: ``number`` accumulates, ``dist``
    concatenates samples, ``dict`` merges recursively, ``list``
    concatenates, anything else is an opaque scalar (last-writer-wins
    among its own kind)."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if is_dist(value):
        return "dist"
    if isinstance(value, dict):
        return "dict"
    if isinstance(value, (list, tuple)):
        return "list"
    return type(value).__name__


def _merge_extras(target: dict, source: dict, path: str) -> None:
    """Merge ``source`` into ``target`` in place, by value kind.

    Raises ``ValueError`` when the two sides hold different kinds under
    the same key — a silent pick-one would lose data (the seed behaviour
    this replaces dropped whichever side a numeric check rejected).
    """
    for key, value in source.items():
        if key not in target:
            target[key] = value
            continue
        current = target[key]
        kind, other_kind = _extras_kind(current), _extras_kind(value)
        if kind != other_kind:
            raise ValueError(
                f"cannot merge SimStats {path}[{key!r}]: "
                f"{kind} vs {other_kind}"
            )
        if kind == "number":
            target[key] = current + value
        elif kind == "dist":
            target[key] = make_dist(
                list(current["samples"]) + list(value["samples"])
            )
        elif kind == "dict":
            _merge_extras(current, value, path=f"{path}[{key!r}]")
        elif kind == "list":
            target[key] = list(current) + list(value)
        else:
            # Same-kind scalars (labels, bools, ...): last writer wins,
            # matching the established behaviour for tags like "smoke".
            target[key] = value


@dataclass
class SimStats:
    """Counters for one simulation run."""

    makespan: int = 0
    pebbles: int = 0
    redundant: int = 0
    messages: int = 0
    pebble_hops: int = 0
    idle_steps: int = 0
    procs_used: int = 0
    # Fault/recovery counters (all zero on a fault-free run).
    faults_injected: int = 0
    lost_messages: int = 0
    retries: int = 0
    recoveries: int = 0
    columns_lost: int = 0
    crashed_nodes: int = 0
    extras: dict = field(default_factory=dict)

    def slowdown(self, guest_steps: int) -> float:
        """Host steps per guest step: the paper's central metric."""
        if guest_steps <= 0:
            raise ValueError("guest_steps must be positive")
        return self.makespan / guest_steps

    def work(self) -> int:
        """Total pebble computations performed by the host."""
        return self.pebbles

    def tag_smoke(self, smoke: bool = True) -> "SimStats":
        """Label these stats as coming from a smoke-sized run.

        Throughput derived from a CI smoke grid is not comparable to
        the full benchmark workload; the tag travels through
        ``extras`` / :meth:`as_dict` so downstream tooling
        (``scripts/bench_compare.py``) can skip absolute-throughput
        checks on smoke artifacts instead of mistaking them for
        regressions.  Returns ``self`` for chaining.
        """
        if smoke:
            self.extras["smoke"] = True
        else:
            self.extras.pop("smoke", None)
        return self

    def record_step_latency(self, samples) -> "SimStats":
        """Attach the per-step latency distribution of this run.

        Stored as a distribution extras entry so sweep-level merges
        concatenate the samples; :meth:`step_latency_summary` and
        :meth:`as_dict` render the percentile view.  Returns ``self``
        for chaining.
        """
        self.extras["step_latency"] = make_dist(samples)
        return self

    def step_latency_samples(self) -> list:
        """Raw per-step latency samples (empty when never recorded)."""
        dist = self.extras.get("step_latency")
        return list(dist["samples"]) if is_dist(dist) else []

    def step_latency_summary(self) -> dict | None:
        """``{count, mean, p50, p95, p99}`` of the step latencies, or
        ``None`` when the run recorded no distribution."""
        dist = self.extras.get("step_latency")
        if not is_dist(dist):
            return None
        return dist_summary(dist["samples"])

    def redundancy_factor(self) -> float:
        """Computed pebbles per distinct pebble (1.0 == no redundancy)."""
        distinct = self.pebbles - self.redundant
        if distinct <= 0:
            return float("nan")
        return self.pebbles / distinct

    def merge(self, other: "SimStats") -> None:
        """Accumulate another run's counters into this one (sweeps)."""
        self.makespan = max(self.makespan, other.makespan)
        self.pebbles += other.pebbles
        self.redundant += other.redundant
        self.messages += other.messages
        self.pebble_hops += other.pebble_hops
        self.idle_steps += other.idle_steps
        self.procs_used = max(self.procs_used, other.procs_used)
        self.faults_injected += other.faults_injected
        self.lost_messages += other.lost_messages
        self.retries += other.retries
        self.recoveries += other.recoveries
        self.columns_lost += other.columns_lost
        self.crashed_nodes += other.crashed_nodes
        # ``extras`` carries experiment-specific counters and structures.
        # Merge by kind: numbers accumulate like the built-in counters,
        # dicts merge recursively, lists concatenate, and scalars of any
        # other same kind (labels, bools) are last-writer-wins.  A kind
        # *conflict* (e.g. a count on one side, a label on the other)
        # raises instead of silently dropping one side's data.
        _merge_extras(self.extras, other.extras, path="extras")

    def as_dict(self) -> dict:
        """Plain-dict view for report tables.

        Distribution extras are rendered as their percentile summary —
        report tables want ``{count, mean, p50, p95, p99}``, not ten
        thousand raw samples (which stay available on :attr:`extras`
        for merging).
        """
        extras = {
            key: dist_summary(value["samples"]) if is_dist(value) else value
            for key, value in self.extras.items()
        }
        return {
            "makespan": self.makespan,
            "pebbles": self.pebbles,
            "redundant": self.redundant,
            "messages": self.messages,
            "pebble_hops": self.pebble_hops,
            "idle_steps": self.idle_steps,
            "procs_used": self.procs_used,
            "faults_injected": self.faults_injected,
            "lost_messages": self.lost_messages,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "columns_lost": self.columns_lost,
            "crashed_nodes": self.crashed_nodes,
            **extras,
        }
