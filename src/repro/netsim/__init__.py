"""Discrete-event network-simulation substrate.

This package is the machine room of the reproduction: a small, fast,
deterministic discrete-event simulator for networks whose links have a
*delay* (steps before the head of a message reaches the other side) and
a *bandwidth* (number of fixed-size packets — "pebbles" in the paper —
that can be injected into a link per time step and direction).

The timing model is exactly the one of Section 2 of the paper:

    P pebbles can be passed along a d-delay link in
    d + ceil(P / bw) - 1 steps,

i.e. links are perfect pipelines with slotted injection.

Modules
-------
events   : deterministic event queue and simulation clock.
links    : :class:`LinkPipe`, one direction of a pipelined link.
routing  : shortest-delay-path routing over ``networkx`` graphs.
fabric   : :class:`Fabric` (general graphs) and :class:`LineFabric`
           (fast path specialised to linear-array hosts).
faults   : deterministic fault injection (:class:`FaultPlan`) and the
           executor's :class:`RecoveryPolicy`.
stats    : run counters (pebbles computed, messages, link busy-steps).
"""

from repro.netsim.events import Event, EventQueue
from repro.netsim.links import LinkPipe
from repro.netsim.routing import Router
from repro.netsim.fabric import Fabric, LineFabric
from repro.netsim.faults import (
    LOST,
    FaultEvent,
    FaultPlan,
    FaultTables,
    RecoveryPolicy,
)
from repro.netsim.stats import SimStats
from repro.netsim.trace import Trace

__all__ = [
    "Event",
    "EventQueue",
    "LinkPipe",
    "Router",
    "Fabric",
    "LineFabric",
    "LOST",
    "FaultEvent",
    "FaultPlan",
    "FaultTables",
    "RecoveryPolicy",
    "SimStats",
    "Trace",
]
