"""Execution tracing: space-time records of a simulation run.

A :class:`Trace` collects ``(time, position, column, row)`` records as
pebbles complete, enabling the analyses the paper reasons about
qualitatively:

* **wavefront progress** — when each guest row is fully simulated
  (first copy), i.e. the realised per-row slowdown profile; the
  OVERLAP schedule predicts bursts separated by ``D_k``-sized pauses
  at box boundaries;
* **processor utilisation** — busy fraction per host position,
  exposing where killing/assignment leaves idle capacity;
* **ASCII space-time diagrams** — a quick terminal picture of which
  part of the host is computing when (positions on the x-axis, time
  bucketed on the y-axis).

Tracing is opt-in (pass ``trace=Trace()`` to the executor) and adds a
single append per pebble.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Trace:
    """Pebble-completion records of one run."""

    records: list[tuple[int, int, int, int]] = field(default_factory=list)
    fault_marks: list[tuple[int, str, str]] = field(default_factory=list)

    def record(self, time: int, position: int, column: int, row: int) -> None:
        """Append one pebble completion (called by the executor)."""
        self.records.append((time, position, column, row))

    def record_fault(self, time: int, kind: str, detail: str) -> None:
        """Append one fault/recovery mark ``(time, kind, detail)``.

        Only fault-aware runs ever call this; fault-free traces stay
        byte-identical to the pre-fault layout.
        """
        self.fault_marks.append((time, kind, detail))

    @property
    def makespan(self) -> int:
        """Latest completion time seen."""
        return max((r[0] for r in self.records), default=0)

    def row_completion_times(self) -> dict[int, int]:
        """Guest row -> time when *every column* of that row has been
        computed at least once (the wavefront)."""
        # earliest completion per (col, row), then max over cols per row
        earliest: dict[tuple[int, int], int] = {}
        for time, _p, col, row in self.records:
            key = (col, row)
            if key not in earliest or time < earliest[key]:
                earliest[key] = time
        out: dict[int, int] = {}
        for (col, row), time in earliest.items():
            if row not in out or time > out[row]:
                out[row] = time
        return out

    def per_row_slowdown(self) -> list[tuple[int, int]]:
        """(row, incremental host steps to finish it) — the realised
        per-row slowdown profile, bursty under OVERLAP."""
        times = self.row_completion_times()
        out = []
        prev = 0
        for row in sorted(times):
            out.append((row, times[row] - prev))
            prev = times[row]
        return out

    def utilization(self, positions: list[int] | None = None) -> dict[int, float]:
        """Busy fraction per position (pebbles computed / makespan)."""
        span = max(1, self.makespan)
        counts: dict[int, int] = {}
        for _time, p, _c, _r in self.records:
            counts[p] = counts.get(p, 0) + 1
        if positions is None:
            positions = sorted(counts)
        return {p: counts.get(p, 0) / span for p in positions}

    def spacetime_ascii(
        self, n_positions: int, width: int = 64, height: int = 16
    ) -> str:
        """Render an ASCII space-time diagram.

        x-axis: host positions (bucketed to ``width``); y-axis: time
        (bucketed to ``height``, earliest at the top); glyph: activity
        density (`` .:-=+*#%@`` from idle to saturated).
        """
        if not self.records:
            return "(empty trace)"
        span = self.makespan + 1
        width = min(width, n_positions)
        height = min(height, span)
        grid = [[0] * width for _ in range(height)]
        for time, p, _c, _r in self.records:
            x = min(width - 1, p * width // n_positions)
            y = min(height - 1, time * height // span)
            grid[y][x] += 1
        peak = max(max(row) for row in grid) or 1
        glyphs = " .:-=+*#%@"
        lines = []
        for y, row in enumerate(grid):
            t_lo = y * span // height
            cells = "".join(
                glyphs[min(len(glyphs) - 1, cell * (len(glyphs) - 1) // peak)]
                for cell in row
            )
            lines.append(f"t={t_lo:>6} |{cells}|")
        return "\n".join(lines)

    def to_chrome_events(self, label: str = "run") -> list[dict]:
        """This trace as Chrome ``trace_event`` dicts (one ``"X"`` per
        pebble on its position's thread row, one instant per fault
        mark), via :mod:`repro.telemetry.chrome`.  Wrap in
        ``{"traceEvents": [...]}`` — or call
        :func:`repro.telemetry.chrome.write_chrome_trace` — to get a
        file Perfetto/``chrome://tracing`` loads directly."""
        from repro.telemetry.chrome import chrome_events

        return chrome_events(trace=self, label=label)

    def summary(self) -> dict:
        """Headline numbers for reports."""
        util = self.utilization()
        rows = self.row_completion_times()
        out = {
            "pebbles": len(self.records),
            "makespan": self.makespan,
            "positions_active": len(util),
            "mean_utilization": (
                round(sum(util.values()) / len(util), 4) if util else 0.0
            ),
            "rows_completed": len(rows),
        }
        if self.fault_marks:
            kinds: dict[str, int] = {}
            for _t, kind, _d in self.fault_marks:
                kinds[kind] = kinds.get(kind, 0) + 1
            out["fault_marks"] = len(self.fault_marks)
            out["fault_kinds"] = dict(sorted(kinds.items()))
        return out
