"""Deterministic event queue for the discrete-event engine.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing sequence number assigned at push time.  The sequence number
makes pops fully deterministic (FIFO among simultaneous events), which
is essential for reproducible simulations and for checking replica
consistency in the database model: two runs with the same seed must
produce bit-identical traces.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True, slots=True)
class Event:
    """A single simulation event.

    Attributes
    ----------
    time:
        Simulation step at which the event fires.
    kind:
        Small integer or string tag interpreted by the executor.
    data:
        Arbitrary payload (kept opaque by the queue).
    """

    time: int
    kind: Any
    data: Any = None


class EventQueue:
    """Min-heap of events with deterministic FIFO tie-breaking.

    The queue intentionally exposes only the operations the executors
    need; in particular there is no "remove arbitrary event" — cancelled
    work is handled by the executors marking state, which keeps the heap
    operations O(log n) and the code simple.
    """

    __slots__ = ("_heap", "_seq", "_pushes", "_pops")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Any, Any]] = []
        self._seq = 0
        self._pushes = 0
        self._pops = 0

    def push(self, time: int, kind: Any, data: Any = None) -> None:
        """Schedule an event at ``time``.

        ``time`` may equal the current time (the executor processes it
        within the same step) but pushing into the past is a logic error
        caught by the executors, not here — the queue is agnostic.
        """
        heapq.heappush(self._heap, (time, self._seq, kind, data))
        self._seq += 1
        self._pushes += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        time, _seq, kind, data = heapq.heappop(self._heap)
        self._pops += 1
        return Event(time, kind, data)

    def peek_time(self) -> int | None:
        """Time of the earliest pending event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        """Yield events in order until the queue is empty.

        Events pushed *during* iteration are drained too, so this is the
        canonical executor main loop.
        """
        while self._heap:
            yield self.pop()

    @property
    def pushes(self) -> int:
        """Total events ever pushed (for instrumentation)."""
        return self._pushes

    @property
    def pops(self) -> int:
        """Total events ever popped (for instrumentation)."""
        return self._pops


@dataclass
class Clock:
    """Simulation clock; advanced only by the executor main loop.

    Keeping the clock separate from the queue lets executors assert the
    no-time-travel invariant (``advance_to`` refuses to move backwards)
    while still allowing many events at the same step.
    """

    now: int = 0
    _max_seen: int = field(default=0, repr=False)

    def advance_to(self, t: int) -> None:
        """Move the clock forward to ``t``.

        Raises
        ------
        ValueError
            If ``t`` is earlier than the current time — an executor bug.
        """
        if t < self.now:
            raise ValueError(f"clock moving backwards: {self.now} -> {t}")
        self.now = t
        if t > self._max_seen:
            self._max_seen = t

    @property
    def horizon(self) -> int:
        """Largest time ever reached (== makespan after a run)."""
        return self._max_seen
