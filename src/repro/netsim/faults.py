"""Deterministic fault injection for the discrete-event simulator.

A :class:`FaultPlan` is a *seeded, fully reproducible* schedule of
infrastructure faults to inject into a run:

* **node crashes** — a workstation dies at time ``t``: it stops
  computing and its database replicas are destroyed (its network
  interface keeps relaying, matching the ``forced_dead`` convention of
  :func:`repro.core.killing.kill_and_label`);
* **link outages** — a link is down for a window ``[t, t+duration)``
  (or permanently): every pebble injected while it is down is *lost*;
* **delay jitter** — a link's delay is inflated by ``extra`` steps for
  a window (congestion spikes, rerouting);
* **message drops** — a one-shot glitch: the first pebble injected
  into a directed link at or after ``t`` vanishes.

Plans are either scripted (chain the builder methods) or generated
from a seeded ``numpy`` RNG (:meth:`FaultPlan.random`).  Two runs of
the same plan on the same host are bit-identical: all fault decisions
are functions of ``(plan, link, direction, injection time)`` and the
per-run consumption state lives in the :class:`FaultTables` compiled
freshly for each run, never in the plan itself.

The executors consume plans through :meth:`FaultPlan.compile`, which
indexes events per directed link; a send into a dead or glitching link
returns the :data:`LOST` sentinel instead of an arrival time (see
:meth:`repro.netsim.fabric.LineFabric.hop_faulty`).  Recovery policy —
how aggressively the executor retries and what a mid-run
reconfiguration costs — is bundled in :class:`RecoveryPolicy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class _Lost:
    """Singleton sentinel: the message entered a dead/glitching link."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "LOST"


#: Returned by fault-aware injection instead of an arrival time.
LOST = _Lost()

NODE_CRASH = "node_crash"
LINK_DOWN = "link_down"
LINK_JITTER = "link_jitter"
MSG_DROP = "msg_drop"

_KINDS = (NODE_CRASH, LINK_DOWN, LINK_JITTER, MSG_DROP)


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    ``target`` is a host position for :data:`NODE_CRASH` and a link
    index (link ``j`` joins array positions ``j`` and ``j+1``) for the
    link kinds.  ``duration`` is the outage/jitter window length
    (``None`` = permanent), ``extra`` the jitter delay inflation, and
    ``direction`` restricts a link fault to one direction (``+1``
    right, ``-1`` left, ``None`` both).
    """

    kind: str
    time: int
    target: int
    duration: int | None = None
    extra: int = 0
    direction: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {_KINDS}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.duration is not None and self.duration < 1:
            raise ValueError(f"fault duration must be >= 1, got {self.duration}")
        if self.kind == LINK_JITTER and self.extra < 1:
            raise ValueError(f"jitter extra delay must be >= 1, got {self.extra}")
        if self.direction not in (None, 1, -1):
            raise ValueError(f"direction must be +1, -1 or None, got {self.direction}")

    def describe(self) -> str:
        """One-line human-readable form (used in deadlock diagnostics)."""
        if self.kind == NODE_CRASH:
            return f"t={self.time} crash node {self.target}"
        window = "permanent" if self.duration is None else f"for {self.duration}"
        side = "" if self.direction is None else f" dir {self.direction:+d}"
        if self.kind == LINK_JITTER:
            return f"t={self.time} jitter +{self.extra} link {self.target}{side} {window}"
        if self.kind == MSG_DROP:
            return f"t={self.time} drop on link {self.target}{side}"
        return f"t={self.time} outage link {self.target}{side} {window}"


_INF = float("inf")


class FaultTables:
    """Per-run compiled view of a plan (owns the consumption state).

    Built by :meth:`FaultPlan.compile`; one instance per run so a plan
    can be replayed any number of times with identical outcomes.
    """

    def __init__(self, plan: "FaultPlan", n: int, n_links: int | None = None) -> None:
        self.plan = plan
        self.crash_times: dict[int, int] = {}
        self._outages: dict[tuple[int, int], list[tuple[int, float]]] = {}
        self._jitters: dict[tuple[int, int], list[tuple[int, float, int]]] = {}
        self._drops: dict[tuple[int, int], list[int]] = {}
        if n_links is None:
            n_links = n - 1  # linear array: link j joins positions j, j+1
        horizon = plan.horizon
        for ev in plan.events:
            if horizon is not None and ev.time >= horizon:
                # Declared outside the run window: validated but inert.
                self._validate_target(ev, n, n_links)
                continue
            if ev.kind == LINK_JITTER and ev.extra <= 0:
                # Defensive: a zero-extra jitter window is a no-op.
                self._validate_target(ev, n, n_links)
                continue
            if ev.kind == NODE_CRASH:
                if not 0 <= ev.target < n:
                    raise ValueError(
                        f"crash target {ev.target} outside host 0..{n - 1}"
                    )
                prev = self.crash_times.get(ev.target)
                if prev is None or ev.time < prev:
                    self.crash_times[ev.target] = ev.time
                continue
            if not 0 <= ev.target < n_links:
                raise ValueError(
                    f"link target {ev.target} outside links 0..{n_links - 1}"
                )
            dirs = (1, -1) if ev.direction is None else (ev.direction,)
            end = _INF if ev.duration is None else ev.time + ev.duration
            for d in dirs:
                key = (ev.target, d)
                if ev.kind == LINK_DOWN:
                    self._outages.setdefault(key, []).append((ev.time, end))
                elif ev.kind == LINK_JITTER:
                    self._jitters.setdefault(key, []).append((ev.time, end, ev.extra))
                else:  # MSG_DROP
                    self._drops.setdefault(key, []).append(ev.time)
        for times in self._drops.values():
            times.sort()
        # Compiled drop counts, frozen before any consumption: the
        # difference against the live lists is the per-link number of
        # one-shot drops the run has eaten (checkpointed for restore).
        self._drops_total = {key: len(times) for key, times in self._drops.items()}

    @staticmethod
    def _validate_target(ev: FaultEvent, n: int, n_links: int) -> None:
        """Range-check a filtered (inert) event so bad targets still fail."""
        if ev.kind == NODE_CRASH:
            if not 0 <= ev.target < n:
                raise ValueError(f"crash target {ev.target} outside host 0..{n - 1}")
        elif not 0 <= ev.target < n_links:
            raise ValueError(
                f"link target {ev.target} outside links 0..{n_links - 1}"
            )

    @property
    def is_effect_free(self) -> bool:
        """True when the compiled tables can never alter a run.

        A non-empty plan can still compile to nothing — every event at
        or after the plan's declared horizon, or jitter windows that add
        zero extra delay.  Both engines treat such tables exactly like
        an empty plan, so effect-free runs stay on the fast path.
        """
        return not (
            self.crash_times or self._outages or self._jitters or self._drops
        )

    def link_outcome(self, link: int, direction: int, t: int):
        """Fate of a pebble injected into ``(link, direction)`` at ``t``:
        :data:`LOST`, or the extra delay (>= 0) to add to its arrival."""
        key = (link, direction)
        for t0, t1 in self._outages.get(key, ()):
            if t0 <= t < t1:
                return LOST
        drops = self._drops.get(key)
        if drops and drops[0] <= t:
            # One-shot: the first injection at/after the glitch eats it.
            drops.pop(0)
            return LOST
        extra = 0
        for t0, t1, e in self._jitters.get(key, ()):
            if t0 <= t < t1:
                extra += e
        return extra

    def has_link_faults(self) -> bool:
        """Whether any link-level fault is scripted."""
        return bool(self._outages or self._jitters or self._drops)

    def faulty_directions(self) -> set[tuple[int, int]]:
        """Directed links ``(link, direction)`` with any scripted fault.

        Injections on every other directed link can never be lost or
        inflated, so an executor may take a fault-check-free fast path
        for them (the faulted dense tier does).
        """
        return set(self._outages) | set(self._jitters) | set(self._drops)

    def is_link_down(self, link: int, direction: int, t: int) -> bool:
        """Whether ``(link, direction)`` is inside an outage window at
        ``t``.

        Unlike :meth:`link_outcome` this is a pure query — it never
        consumes one-shot drops — so routing layers may probe link
        health as often as they like without perturbing the scripted
        fault sequence.
        """
        for t0, t1 in self._outages.get((link, direction), ()):
            if t0 <= t < t1:
                return True
        return False

    def extra_delay(self, link: int, direction: int, t: int) -> int:
        """Jitter inflation for an injection at ``t`` (pure query).

        Sums every jitter window covering ``t`` on ``(link,
        direction)``; like :meth:`is_link_down` it never consumes
        one-shot drops, so it is safe to probe repeatedly.  Windows are
        half-open ``[t0, t1)``.
        """
        extra = 0
        for t0, t1, e in self._jitters.get((link, direction), ()):
            if t0 <= t < t1:
                extra += e
        return extra

    def is_crashed(self, position: int, t: int) -> bool:
        """Whether ``position`` has crashed at or before step ``t``.

        Crash times are closed on the left: a node scripted to crash at
        ``t0`` is dead for every ``t >= t0`` (crashes are permanent).
        """
        t0 = self.crash_times.get(position)
        return t0 is not None and t >= t0

    def drops_consumed(self) -> list[list[int]]:
        """How many one-shot drops each directed link has eaten so far.

        Returned as ``[[link, direction, count]]`` rows (sorted, only
        links with consumption) — the checkpoint-friendly complement of
        :meth:`consume_drops`.
        """
        out = []
        for key in sorted(self._drops_total):
            used = self._drops_total[key] - len(self._drops.get(key, ()))
            if used:
                out.append([key[0], key[1], used])
        return out

    def consume_drops(self, consumed: list) -> None:
        """Replay a :meth:`drops_consumed` record onto fresh tables.

        Sound during checkpoint restore because one-shot drops are
        consumed earliest-armed-first and the restored prefix consumed
        exactly the same injections; rows for drops the (possibly
        edited) plan no longer scripts are ignored.
        """
        for link, direction, count in consumed:
            times = self._drops.get((link, direction))
            if times:
                del times[: min(count, len(times))]

    def boundaries(self) -> list[int]:
        """Sorted unique times where the fault environment changes.

        These are the segment boundaries of the faulted dense tier:
        crash times, outage/jitter window opens and (finite) closes,
        and one-shot drop arm times.  Between consecutive boundaries
        the compiled tables are time-invariant (modulo drop
        consumption), so an executor may replay the stretch with the
        fault-free vectorised skeleton and checkpoint at each edge.
        """
        times: set[int] = set(self.crash_times.values())
        for windows in self._outages.values():
            for t0, t1 in windows:
                times.add(t0)
                if t1 != _INF:
                    times.add(int(t1))
        for windows in self._jitters.values():
            for t0, t1, _e in windows:
                times.add(t0)
                if t1 != _INF:
                    times.add(int(t1))
        for drops in self._drops.values():
            times.update(drops)
        return sorted(times)


@dataclass
class FaultPlan:
    """A scripted or randomly generated fault schedule.

    The plan itself is immutable state + builder sugar; all per-run
    bookkeeping lives in the :class:`FaultTables` returned by
    :meth:`compile`.
    """

    events: list[FaultEvent] = field(default_factory=list)
    seed: int | None = None
    #: Declared run window: events at/after ``horizon`` are treated as
    #: no-ops when the plan is compiled (see :meth:`declare_horizon`).
    horizon: int | None = None

    # -- construction ---------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan with no events (bit-identical to running fault-free)."""
        return cls([])

    def declare_horizon(self, horizon: int) -> "FaultPlan":
        """Declare the run window ``[0, horizon)`` (chainable).

        Compiling the plan then drops every event scheduled at or after
        ``horizon``: the caller asserts those events fall outside the
        run and must not perturb it (even if the faulted run itself
        overshoots the declared window).  A plan whose events are *all*
        filtered compiles to effect-free tables and both engines treat
        it exactly like an empty plan.
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.horizon = horizon
        return self

    def crash(self, position: int, time: int) -> "FaultPlan":
        """Script a node crash (chainable)."""
        self.events.append(FaultEvent(NODE_CRASH, time, position))
        return self

    def link_down(
        self, link: int, time: int, duration: int | None = None,
        direction: int | None = None,
    ) -> "FaultPlan":
        """Script a link outage (``duration=None`` = permanent)."""
        self.events.append(
            FaultEvent(LINK_DOWN, time, link, duration, direction=direction)
        )
        return self

    def jitter(
        self, link: int, time: int, duration: int, extra: int,
        direction: int | None = None,
    ) -> "FaultPlan":
        """Script a delay spike of ``extra`` steps on a link."""
        self.events.append(
            FaultEvent(LINK_JITTER, time, link, duration, extra, direction)
        )
        return self

    def drop(self, link: int, time: int, direction: int = 1) -> "FaultPlan":
        """Script a one-shot message drop on a directed link."""
        self.events.append(FaultEvent(MSG_DROP, time, link, direction=direction))
        return self

    @classmethod
    def random(
        cls,
        n: int,
        seed: int,
        horizon: int,
        node_crash_rate: float = 0.0,
        link_outage_rate: float = 0.0,
        jitter_rate: float = 0.0,
        drop_rate: float = 0.0,
        mean_outage: int = 16,
        max_jitter: int = 8,
    ) -> "FaultPlan":
        """Generate a plan for an ``n``-position array host from a
        seeded RNG.  Each rate is the per-node (or per-link) probability
        of suffering one fault somewhere in ``[0, horizon)``; the same
        ``(n, seed, horizon, rates)`` always yields the same plan.
        """
        import numpy as np

        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        rates = {
            "node_crash_rate": node_crash_rate,
            "link_outage_rate": link_outage_rate,
            "jitter_rate": jitter_rate,
            "drop_rate": drop_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        rng = np.random.default_rng(seed)
        plan = cls([], seed=seed, horizon=horizon)
        n_links = max(0, n - 1)
        for p in range(n):
            if rng.random() < node_crash_rate:
                plan.crash(p, int(rng.integers(0, horizon)))
        for j in range(n_links):
            if rng.random() < link_outage_rate:
                t = int(rng.integers(0, horizon))
                dur = 1 + int(rng.poisson(max(1, mean_outage)))
                plan.link_down(j, t, dur)
            if rng.random() < jitter_rate:
                t = int(rng.integers(0, horizon))
                dur = 1 + int(rng.poisson(max(1, mean_outage)))
                extra = 1 + int(rng.integers(0, max(1, max_jitter)))
                plan.jitter(j, t, dur, extra)
            if rng.random() < drop_rate:
                plan.drop(
                    j, int(rng.integers(0, horizon)),
                    direction=1 if rng.random() < 0.5 else -1,
                )
        plan.sort()
        return plan

    # -- views ----------------------------------------------------------
    def sort(self) -> "FaultPlan":
        """Order events by time (stable; builder order breaks ties)."""
        self.events.sort(key=lambda ev: ev.time)
        return self

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules nothing."""
        return not self.events

    def crash_positions(self) -> set[int]:
        """Host positions with a scripted crash."""
        return {ev.target for ev in self.events if ev.kind == NODE_CRASH}

    def counts(self) -> dict[str, int]:
        """Event count per fault kind."""
        out = {k: 0 for k in _KINDS}
        for ev in self.events:
            out[ev.kind] += 1
        return out

    def describe(self) -> str:
        """Multi-line listing of every event (diagnostics, CLI)."""
        if not self.events:
            return "(no faults)"
        return "\n".join(ev.describe() for ev in sorted(self.events, key=lambda e: e.time))

    def to_spec(self) -> dict:
        """Plain-JSON form of the plan (structured sweep-config key).

        The spec is the delta layer's view of a plan: sweep configs
        carry it instead of the object so cached entries can be diffed
        field-by-field (see ``repro.delta.fault_events_rule``).
        :meth:`from_spec` inverts it exactly.
        """
        return {
            "events": [
                {
                    "kind": ev.kind,
                    "time": ev.time,
                    "target": ev.target,
                    "duration": ev.duration,
                    "extra": ev.extra,
                    "direction": ev.direction,
                }
                for ev in self.events
            ],
            "seed": self.seed,
            "horizon": self.horizon,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_spec` output."""
        events = [
            FaultEvent(
                kind=e["kind"],
                time=e["time"],
                target=e["target"],
                duration=e.get("duration"),
                extra=e.get("extra", 0),
                direction=e.get("direction"),
            )
            for e in spec.get("events", [])
        ]
        return cls(events, seed=spec.get("seed"), horizon=spec.get("horizon"))

    def compile(self, host) -> FaultTables:
        """Validate against ``host`` and build fresh per-run tables."""
        return FaultTables(self, host.n)

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the executor's detection/recovery machinery.

    ``retry_factor``
        A subscription stream is declared stalled when no new pebble
        arrived within ``retry_factor * route_delay(subscriber,
        provider)`` steps; the subscriber then re-requests the missing
        suffix from a (possibly different) surviving replica.
    ``max_retries``
        Re-requests per stream before the executor gives up and raises
        :class:`~repro.core.executor.SimulationDeadlock` (a permanently
        partitioned link genuinely cannot be retried around).
    ``restart_penalty``
        Host steps charged for one mid-run reconfiguration (stage 1-3
        re-labelling plus redistributing database checkpoints along the
        array).  ``None`` = the host's total link delay, i.e. one full
        end-to-end broadcast.
    ``watchdog_factor``
        The no-progress watchdog fires every ``watchdog_factor *
        max(timeouts)`` steps; a full window without any pebble
        progress anywhere means the run is wedged and raises
        ``SimulationDeadlock`` instead of spinning forever.
    """

    retry_factor: float = 4.0
    max_retries: int = 32
    restart_penalty: int | None = None
    watchdog_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.retry_factor <= 0:
            raise ValueError("retry_factor must be positive")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.restart_penalty is not None and self.restart_penalty < 0:
            raise ValueError("restart_penalty must be >= 0")
        if self.watchdog_factor < 1:
            raise ValueError("watchdog_factor must be >= 1")

    def timeout(self, route_delay: int) -> int:
        """Stall deadline for a stream whose route delay is given."""
        return max(4, int(math.ceil(self.retry_factor * max(1, route_delay))))
