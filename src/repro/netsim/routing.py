"""Shortest-delay routing over ``networkx`` host graphs.

Hosts in the paper are fixed-connection networks with a static delay on
each link, so routes never change during a simulation.  The router
computes shortest paths under the ``delay`` edge attribute lazily and
caches them; for the sizes used here (up to a few thousand nodes) a
per-source Dijkstra on first use is cheap and avoids the O(n^2) memory
of an all-pairs table.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

DELAY_ATTR = "delay"


class Router:
    """Static shortest-delay-path router with per-source caching."""

    def __init__(self, graph: nx.Graph, delay_attr: str = DELAY_ATTR) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("cannot route over an empty graph")
        if not nx.is_connected(graph):
            raise ValueError("host graph must be connected")
        for u, v, data in graph.edges(data=True):
            d = data.get(delay_attr)
            if d is None:
                raise ValueError(f"edge ({u},{v}) missing '{delay_attr}' attribute")
            if d < 1:
                raise ValueError(f"edge ({u},{v}) has delay {d} < 1")
        self.graph = graph
        self.delay_attr = delay_attr
        self._paths: dict[Hashable, dict[Hashable, list[Hashable]]] = {}
        self._dists: dict[Hashable, dict[Hashable, int]] = {}

    def _ensure_source(self, src: Hashable) -> None:
        if src in self._paths:
            return
        dist, paths = nx.single_source_dijkstra(
            self.graph, src, weight=self.delay_attr
        )
        self._paths[src] = paths
        self._dists[src] = dist

    def path(self, src: Hashable, dst: Hashable) -> list[Hashable]:
        """Node sequence of a shortest-delay path, inclusive of endpoints."""
        self._ensure_source(src)
        try:
            return self._paths[src][dst]
        except KeyError:
            raise nx.NetworkXNoPath(f"no path {src} -> {dst}") from None

    def delay(self, src: Hashable, dst: Hashable) -> int:
        """Total delay along the shortest-delay path."""
        self._ensure_source(src)
        return self._dists[src][dst]

    def hops(self, src: Hashable, dst: Hashable) -> int:
        """Number of links on the chosen path."""
        return len(self.path(src, dst)) - 1

    def invalidate(self) -> None:
        """Drop caches (after mutating the graph's delays)."""
        self._paths.clear()
        self._dists.clear()
