"""Pipelined link model.

A :class:`LinkPipe` is one *direction* of a network link with integer
delay ``d >= 1`` and integer bandwidth ``bw >= 1`` (pebbles per step).
The model matches Section 2 of the paper: injection happens in slotted
time, at most ``bw`` pebbles per slot, and a pebble injected in slot
``s`` arrives at time ``s + d``.  Consequently ``P`` pebbles all ready
at time 0 occupy slots ``0 .. ceil(P/bw) - 1`` and the last one arrives
at ``d + ceil(P/bw) - 1`` — the paper's formula.

The pipe only supports *monotone* injection requests (``t_ready`` must
be non-decreasing across calls).  All executors in this repository
process events in time order, so the requirement holds by construction;
it is asserted to catch executor bugs early.
"""

from __future__ import annotations


class LinkPipe:
    """One direction of a pipelined, bandwidth-limited link.

    Parameters
    ----------
    delay:
        Link delay in steps (time between injection and arrival of a
        single pebble).  Must be >= 1: the paper's "unit delay" is 1.
    bandwidth:
        Pebbles that may be injected per time slot.  The paper assumes
        host bandwidth is ``log n`` times guest bandwidth; passing 1
        models the weaker host of the paper's footnote (costing an extra
        ``log n`` factor in slowdown).
    """

    __slots__ = ("delay", "bandwidth", "_slot_time", "_slot_used", "_injected", "_last_ready")

    def __init__(self, delay: int, bandwidth: int = 1) -> None:
        if delay < 1:
            raise ValueError(f"link delay must be >= 1, got {delay}")
        if bandwidth < 1:
            raise ValueError(f"link bandwidth must be >= 1, got {bandwidth}")
        self.delay = int(delay)
        self.bandwidth = int(bandwidth)
        self._slot_time = -1  # last slot with any injection
        self._slot_used = 0  # pebbles injected into that slot
        self._injected = 0  # lifetime total
        self._last_ready = -1

    def inject(self, t_ready: int) -> int:
        """Inject one pebble that is ready to enter the link at ``t_ready``.

        Returns the arrival time at the far end.  Requests must be made
        with non-decreasing ``t_ready`` (event-order processing).
        """
        if t_ready < self._last_ready:
            raise AssertionError(
                f"non-monotone injection: t_ready={t_ready} after {self._last_ready}"
            )
        self._last_ready = t_ready
        if t_ready > self._slot_time:
            # Pipe is idle at t_ready: start a fresh slot.
            self._slot_time = t_ready
            self._slot_used = 1
        elif self._slot_used < self.bandwidth:
            # Room left in the currently-filling slot.
            self._slot_used += 1
        else:
            # Current slot full: spill into the next one.
            self._slot_time += 1
            self._slot_used = 1
        self._injected += 1
        return self._slot_time + self.delay

    @property
    def injected(self) -> int:
        """Lifetime number of pebbles injected into this pipe."""
        return self._injected

    def inject_many(self, t_ready: int, count: int) -> list[int]:
        """Inject ``count`` pebbles all ready at ``t_ready`` in one call.

        Equivalent to ``count`` successive :meth:`inject` calls with the
        same ``t_ready`` (identical slot assignment and arrival times)
        but without the per-call overhead — the batched path whole-stream
        sends use.  Returns the arrival times in injection order.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return []
        if t_ready < self._last_ready:
            raise AssertionError(
                f"non-monotone injection: t_ready={t_ready} after {self._last_ready}"
            )
        self._last_ready = t_ready
        bw = self.bandwidth
        slot_time = self._slot_time
        slot_used = self._slot_used
        if t_ready > slot_time:
            slot_time = t_ready
            slot_used = 0
        # Closed form of the slot rule: with ``slot_used`` pebbles
        # already occupying the current slot, injection ``j`` (0-based)
        # is the ``slot_used + j``-th occupant and lands in slot
        # ``slot_time + (slot_used + j) // bw``.  Same assignment as
        # ``count`` successive inject() calls, without the per-pebble
        # branch (the dense tier inlines this identical arithmetic).
        delay = self.delay
        base = slot_time + delay
        arrivals = [base + (slot_used + j) // bw for j in range(count)]
        occ = slot_used + count - 1
        self._slot_time = slot_time + occ // bw
        self._slot_used = occ % bw + 1
        self._injected += count
        return arrivals

    def busy_until(self) -> int:
        """First step at which a new injection would not queue.

        An idle (fresh or reset) pipe reports ``0`` — schedulers must
        never see a negative ready time.
        """
        if self._slot_time < 0:
            return 0
        if self._slot_used >= self.bandwidth:
            return self._slot_time + 1
        return self._slot_time

    def reset(self) -> None:
        """Return the pipe to its initial (idle) state."""
        self._slot_time = -1
        self._slot_used = 0
        self._injected = 0
        self._last_ready = -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LinkPipe(delay={self.delay}, bw={self.bandwidth}, "
            f"injected={self._injected})"
        )


def batch_transit_time(pebbles: int, delay: int, bandwidth: int) -> int:
    """Closed-form time for ``pebbles`` pebbles to cross a pipe.

    This is the paper's ``d + ceil(P/bw) - 1`` expression; used by the
    explicit (non-event-driven) schedules in :mod:`repro.core.uniform`
    and :mod:`repro.core.schedule`, and to cross-check :class:`LinkPipe`.
    """
    if pebbles < 0:
        raise ValueError("pebble count must be non-negative")
    if pebbles == 0:
        return 0
    return delay + -(-pebbles // bandwidth) - 1
