"""X2 — the higher-dimensional generalization of Theorem 8 (Section
5's closing remark), for D = 2, 3, 4."""

from conftest import run_experiment_bench


def test_x2_higher_dimensions(benchmark):
    run_experiment_bench(
        benchmark,
        "x2",
        expected_true=[
            "all verified",
            "redundancy <= 3x in every dimension",
            "measured within 2.5x of the generalized estimate",
        ],
    )
