"""X3 — least-squares calibration of the constants behind the paper's
asymptotic bounds (Theorems 2, 4, 7)."""

from conftest import run_experiment_bench


def test_x3_constant_calibration(benchmark):
    run_experiment_bench(
        benchmark,
        "x3",
        expected_true=[
            "Thm 4 constant within the paper's 5",
            "Thm 7 constant within the paper's 3",
            "all fits high quality (R^2 > 0.95)",
        ],
    )
