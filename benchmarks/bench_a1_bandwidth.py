"""A1 — ablation: where the paper's ``log n`` bandwidth assumption
bites (bulk column exchanges) and where it doesn't (thin 1-D boundary
streams)."""

from conftest import run_experiment_bench


def test_a1_bandwidth_ablation(benchmark):
    result = run_experiment_bench(
        benchmark,
        "a1",
        expected_true=[
            "bulk penalty real but within log n",
            "log n recovers most of the bulk gap",
        ],
    )
    assert result.summary["1-D streams: bw=1 penalty (thin traffic, ~1.0)"] < 1.3
