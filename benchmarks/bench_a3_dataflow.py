"""A3 — ablation: the dataflow model hides the same latency with zero
redundancy; the database model cannot (Section 6's moral)."""

from conftest import run_experiment_bench


def test_a3_dataflow_vs_database(benchmark):
    result = run_experiment_bench(
        benchmark,
        "a3",
        expected_true=[
            "dataflow redundancy exactly 1.0",
            "database redundancy > 2x",
            "same slowdown order",
        ],
    )
    assert 0.35 <= result.summary["dataflow exponent (~0.5)"] <= 0.7
