"""A2 — ablation: the constant ``c > 2`` of the killing/labelling
stages (guest size vs overlap-window trade-off)."""

from conftest import run_experiment_bench


def test_a2_constant_c_ablation(benchmark):
    run_experiment_bench(
        benchmark,
        "a2",
        expected_true=[
            "guest size grows with c",
            "killed fraction within 2/c everywhere",
            "guest size meets the Lemma-2 floor",
        ],
    )
