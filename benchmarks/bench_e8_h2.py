"""E8 — Theorem 10: two copies + constant load still pay
``Omega(log n)`` on H2, while staying far below ``d = sqrt(n)``."""

from conftest import run_experiment_bench


def test_e8_two_copy_lower_bound(benchmark):
    run_experiment_bench(
        benchmark,
        "e8",
        expected_true=[
            "Fact 4 holds on every instance",
            "measured >= analytic bound",
            "measured grows with log n",
            "measured stays below d = sqrt(n)",
        ],
    )
