"""Shared bench plumbing.

Each bench runs one experiment (see ``repro.experiments``) exactly once
under ``pytest-benchmark`` (``pedantic`` mode — these are end-to-end
simulations, not microbenchmarks), asserts the experiment's shape
checks, prints the paper-style table, and writes it to ``results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import get_experiment

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def run_experiment_bench(benchmark, exp_id: str, expected_true: list[str] | None = None):
    """Run experiment ``exp_id`` once under the benchmark fixture.

    ``expected_true`` lists summary keys that must be truthy — the
    "shape holds" assertions recorded in EXPERIMENTS.md.
    """
    run = get_experiment(exp_id)
    result = benchmark.pedantic(run, kwargs={"quick": True}, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {k: str(v) for k, v in result.summary.items()}
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(result.render() + "\n")
    print()
    result.print()
    for key in expected_true or []:
        assert result.summary.get(key), f"{exp_id}: shape check failed: {key}"
    return result
