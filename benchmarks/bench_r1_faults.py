"""R1 bench — fault-injection overhead and degradation under crashes.

Two claims are pinned down here:

* An **empty** fault plan must cost nothing: the executor takes the
  plain (fault-free) inner loop, so wall-clock overhead stays within
  noise of running without ``faults=`` at all.
* Seeded crash plans at 5% / 15% per-node rates complete verified on a
  reduced surviving guest, with the measured slowdown degrading as the
  rate grows — the R1 curve, benched end-to-end.
"""

from conftest import run_experiment_bench

from repro.core.assignment import assign_databases
from repro.core.executor import GreedyExecutor
from repro.core.killing import kill_and_label
from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram
from repro.netsim.faults import FaultPlan

HOST_N = 64
STEPS = 10


def _executor(faults=None):
    host = HostArray.uniform(HOST_N)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, min_copies=2)
    return GreedyExecutor(host, assignment, CounterProgram(), STEPS, faults=faults)


def test_executor_fault_free_baseline(benchmark):
    result = benchmark(lambda: _executor().run())
    benchmark.extra_info["makespan"] = result.stats.makespan


def test_executor_empty_plan_overhead(benchmark):
    """Empty plan must ride the plain loop — same makespan, noise-level cost."""
    plain = _executor().run()
    result = benchmark(lambda: _executor(faults=FaultPlan.empty()).run())
    assert result.stats.makespan == plain.stats.makespan
    assert result.stats.faults_injected == 0
    benchmark.extra_info["makespan"] = result.stats.makespan


def _crash_bench(benchmark, rate):
    host = HostArray.uniform(HOST_N)
    clean = simulate_overlap(host, steps=STEPS, min_copies=2)
    plan = FaultPlan.random(
        host.n,
        seed=1996,
        horizon=max(8, clean.exec_result.stats.makespan),
        node_crash_rate=rate,
    )

    def run():
        return simulate_overlap(
            host, steps=STEPS, min_copies=2, faults=plan, verify=True
        )

    res = benchmark(run)
    assert res.verified
    assert res.m_surviving < res.m  # crashes really hit database holders
    assert res.slowdown > clean.slowdown  # recovery costs host time
    benchmark.extra_info.update(
        {
            "crash_rate": rate,
            "m_surviving": res.m_surviving,
            "recoveries": res.exec_result.stats.recoveries,
            "slowdown": round(res.slowdown, 2),
            "clean_slowdown": round(clean.slowdown, 2),
        }
    )
    return res


def test_overlap_degradation_5pct_crashes(benchmark):
    _crash_bench(benchmark, 0.05)


def test_overlap_degradation_15pct_crashes(benchmark):
    _crash_bench(benchmark, 0.15)


def test_r1_experiment(benchmark):
    run_experiment_bench(
        benchmark,
        "r1",
        expected_true=[
            "zero-rate run identical to fault-free",
            "every run verified or deadlocked",
            "degradation grows with fault rate",
        ],
    )
