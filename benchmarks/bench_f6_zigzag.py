"""F6 — Figure 6: the 4j-pebble zigzag dependency path."""

from conftest import run_experiment_bench


def test_f6_zigzag_path(benchmark):
    run_experiment_bench(
        benchmark,
        "f6",
        expected_true=[
            "all paths are valid dependency chains",
            "single-copy pays along the path",
        ],
    )
