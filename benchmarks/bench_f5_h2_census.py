"""F5 — Figure 5: the H2 level-k box construction census."""

from conftest import run_experiment_bench


def test_f5_h2_census(benchmark):
    run_experiment_bench(
        benchmark,
        "f5",
        expected_true=[
            "long links match 2^k exactly",
            "d_ave constant across sizes",
            "Fact 4 holds everywhere",
        ],
    )
