"""E2 — Theorem 3: the work-efficient blocked variant.

Block-factor sweep on a skewed host: blocking must raise efficiency by
an order of magnitude and hide the long link.
"""

from conftest import run_experiment_bench


def test_e2_work_efficiency(benchmark):
    result = run_experiment_bench(benchmark, "e2", expected_true=["d_max hidden"])
    assert result.summary["efficiency gain (max block / load-1)"] > 5
