"""X1 — Section 7's open questions, explored: delay *variance* in
isolation (identical G/H structure, fixed d_ave) and rings."""

from conftest import run_experiment_bench


def test_x1_open_questions(benchmark):
    result = run_experiment_bench(
        benchmark, "x1", expected_true=["redundancy makes variance nearly irrelevant"]
    )
    assert result.summary["ring overhead vs array (paper: <= 2)"] <= 2.2
