"""F4 — Figure 4: trapezium/exchange/triangle phase accounting."""

from conftest import run_experiment_bench


def test_f4_trapezium_phases(benchmark):
    run_experiment_bench(
        benchmark,
        "f4",
        expected_true=["rounds within 5d", "measured within round budget"],
    )
