"""E10 — Lemmas 1-4: killing/labelling invariants across host styles."""

from conftest import run_experiment_bench


def test_e10_killing_lemmas(benchmark):
    result = run_experiment_bench(
        benchmark, "e10", expected_true=["all lemma bounds hold"]
    )
    assert result.summary["max killed fraction (<= ~2/c = 0.5)"] <= 0.5
