"""E1 — Theorem 2: OVERLAP slowdown ``O(d_ave log^3 n)``.

Regenerates the d_ave and n sweeps; asserts the measured points stay
below the explicit schedule bound and the growth shapes match.
"""

from conftest import run_experiment_bench


def test_e1_overlap_slowdown(benchmark):
    result = run_experiment_bench(
        benchmark, "e1", expected_true=["all points below schedule bound"]
    )
    assert 0.4 <= result.summary["d_ave exponent (paper: ~1)"] <= 1.3
    assert result.summary["n exponent (paper: polylog, i.e. << 1)"] < 0.5
