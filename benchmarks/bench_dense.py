#!/usr/bin/env python
"""Per-topology dense-vs-greedy engine benchmark.

The dense tier started as a line-host fast path; it now also covers
ring guests (arbitrary ``dep_map`` wiring through the watermark
skeleton) and graph hosts (the Fact-3 embedding precomputes every
route delay into the induced array's flat ``link_delays``).  This
script measures each topology separately so a regression in one
coverage class cannot hide behind another:

* **line** — an OVERLAP block assignment on a random-delay array
  (the original fast path, plus the vectorised ready-scan);
* **ring** — the folded ring ``dep_map``/``col_label`` reduction of
  :mod:`repro.core.ring` on the same class of array host;
* **graph** — a mesh host reduced to an array by
  :func:`repro.topology.embedding.embed_linear_array`;
* **faulted** — the same three topologies under a scripted
  :class:`~repro.netsim.faults.FaultPlan`: the segmented
  :class:`~repro.core.dense_faults.FaultedDenseExecutor` (vectorised
  replay between fault boundaries) against the greedy engine's
  event-by-event fault path.

Setup (host, killing, assignment, dep_map, embedding) is built once
outside the timers; each timed pass constructs and runs one executor —
fresh construction matters on faulted workloads, where compiled fault
tables hold one-shot drop state — so the ratio isolates the engines
themselves.  Wall times are the median of three passes after a
warm-up.  Both tiers are bit-identical (tests/test_dense.py and
tests/test_dense_faults.py; the faulted timer also re-asserts stats
equality inline); this records what the dense tier buys.

Results go to ``BENCH_dense.json`` (``--out`` to override)::

    PYTHONPATH=src python benchmarks/bench_dense.py --smoke

``--smoke`` shrinks the workloads for CI and stamps ``"smoke": true``
into every section; ``scripts/bench_compare.py`` relaxes the line-
section ratio gate on smoke records (small workloads blunt the
vectorisation advantage) but keeps the >= 3x floor everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np

from repro.core.assignment import assign_databases
from repro.core.baselines import spread_assignment
from repro.core.dense import DenseExecutor
from repro.core.dense_faults import FaultedDenseExecutor
from repro.core.executor import GreedyExecutor
from repro.core.killing import kill_and_label
from repro.core.ring import ring_dep_map
from repro.machine.host import HostArray
from repro.machine.programs import get_program
from repro.netsim.faults import FaultPlan
from repro.topology.delays import scale_to_average, uniform_delays
from repro.topology.embedding import embed_linear_array
from repro.topology.generators import mesh_host

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _bench_host(n: int, d_target: float, seed: int) -> HostArray:
    rng = np.random.default_rng(seed)
    return HostArray(scale_to_average(uniform_delays(n - 1, rng, 1, 8), d_target))


def _time_engines(
    host: HostArray,
    assignment,
    steps: int,
    repeats: int,
    smoke: bool,
    **kwargs,
) -> dict:
    """Median-of-``repeats`` wall time for each engine on one workload."""
    program = get_program("counter")
    out: dict = {"n": host.n, "m": assignment.m, "steps": steps}
    for name, cls in (("greedy", GreedyExecutor), ("dense", DenseExecutor)):
        cls(host, assignment, program, steps, **kwargs).run()  # warm-up
        walls = []
        pebbles = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = cls(host, assignment, program, steps, **kwargs).run()
            walls.append(time.perf_counter() - t0)
            pebbles = res.stats.pebbles
        wall = statistics.median(walls)
        out[name] = {
            "pebbles": pebbles,
            "median_wall_s": round(wall, 4),
            "steps_per_sec": round(pebbles / wall, 1),
        }
    out["dense_over_greedy"] = round(
        out["dense"]["steps_per_sec"] / out["greedy"]["steps_per_sec"], 2
    )
    out["smoke"] = smoke
    return out


def _time_faulted_engines(
    host: HostArray,
    assignment,
    steps: int,
    plan: FaultPlan,
    repeats: int,
    smoke: bool,
    **kwargs,
) -> dict:
    """Faulted twin of :func:`_time_engines`.

    Each pass constructs a fresh executor (the compiled fault tables
    own one-shot drop consumption, so they cannot be reused), and the
    two engines' :class:`SimStats` are asserted equal so a timing run
    can never drift from the bit-identity contract unnoticed.
    """
    program = get_program("counter")
    out: dict = {
        "n": host.n,
        "m": assignment.m,
        "steps": steps,
        "fault_events": len(plan.events),
    }
    stats_seen: dict = {}
    for name, cls in (("greedy", GreedyExecutor), ("dense", FaultedDenseExecutor)):
        cls(host, assignment, program, steps, faults=plan, **kwargs).run()
        walls = []
        pebbles = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = cls(
                host, assignment, program, steps, faults=plan, **kwargs
            ).run()
            walls.append(time.perf_counter() - t0)
            pebbles = res.stats.pebbles
            stats_seen[name] = dict(res.stats.__dict__)
        wall = statistics.median(walls)
        out[name] = {
            "pebbles": pebbles,
            "median_wall_s": round(wall, 4),
            "steps_per_sec": round(pebbles / wall, 1),
        }
    if stats_seen["dense"] != stats_seen["greedy"]:
        diff = {
            k: (stats_seen["greedy"][k], stats_seen["dense"][k])
            for k in stats_seen["greedy"]
            if stats_seen["greedy"][k] != stats_seen["dense"][k]
        }
        raise AssertionError(f"faulted engines diverged: {diff}")
    out["dense_over_greedy"] = round(
        out["dense"]["steps_per_sec"] / out["greedy"]["steps_per_sec"], 2
    )
    out["smoke"] = smoke
    return out


def bench_line(n: int, steps: int, repeats: int = 3, smoke: bool = False) -> dict:
    """The original fast path: OVERLAP block assignment on an array."""
    host = _bench_host(n, 8, seed=0)
    assignment = assign_databases(kill_and_label(host), block=2)
    return _time_engines(host, assignment, steps, repeats, smoke)


def bench_ring(n: int, steps: int, repeats: int = 3, smoke: bool = False) -> dict:
    """The folded-ring reduction: dep_map wiring, relabelled columns."""
    host = _bench_host(n, 8, seed=1)
    m = host.n
    dep_map, node_of_col = ring_dep_map(m)
    label = lambda col: node_of_col[col] + 1  # noqa: E731 - tiny adapter
    assignment = spread_assignment(host.n, m)
    return _time_engines(
        host, assignment, steps, repeats, smoke,
        dep_map=dep_map, col_label=label,
    )


def bench_graph(
    rows: int, cols: int, steps: int, repeats: int = 3, smoke: bool = False
) -> dict:
    """A mesh host reduced to an array by the Fact-3 embedding."""
    rng = np.random.default_rng(2)
    n_links = 2 * rows * cols - rows - cols
    host = mesh_host(rows, cols, uniform_delays(n_links, rng, 1, 6))
    array = embed_linear_array(host).host_array(name=f"embed({host.name})")
    assignment = assign_databases(kill_and_label(array), block=2)
    out = _time_engines(array, assignment, steps, repeats, smoke)
    out["host"] = host.name
    return out


def bench_faulted_line(
    n: int, steps: int, repeats: int = 3, smoke: bool = False
) -> dict:
    """Full fault mix (crashes, outages, jitter, drops) on an array
    with ``min_copies=2`` replication."""
    host = _bench_host(n, 8, seed=3)
    assignment = assign_databases(kill_and_label(host), block=2, min_copies=2)
    plan = FaultPlan.random(
        host.n,
        seed=11,
        horizon=steps * 24,
        node_crash_rate=0.02,
        link_outage_rate=0.04,
        jitter_rate=0.06,
        drop_rate=0.06,
    )
    return _time_faulted_engines(host, assignment, steps, plan, repeats, smoke)


def bench_faulted_ring(
    n: int, steps: int, repeats: int = 3, smoke: bool = False
) -> dict:
    """Link-level faults through the folded-ring ``dep_map`` wiring
    (node crashes are rejected on relabelled guests)."""
    host = _bench_host(n, 8, seed=4)
    m = host.n
    dep_map, node_of_col = ring_dep_map(m)
    label = lambda col: node_of_col[col] + 1  # noqa: E731 - tiny adapter
    assignment = spread_assignment(host.n, m)
    plan = FaultPlan.random(
        host.n,
        seed=12,
        horizon=steps * 24,
        link_outage_rate=0.04,
        jitter_rate=0.06,
        drop_rate=0.06,
    )
    return _time_faulted_engines(
        host, assignment, steps, plan, repeats, smoke,
        dep_map=dep_map, col_label=label,
    )


def bench_faulted_graph(
    rows: int, cols: int, steps: int, repeats: int = 3, smoke: bool = False
) -> dict:
    """Full fault mix on an embedded mesh (targets in embedded-array
    coordinates), ``min_copies=2``."""
    rng = np.random.default_rng(5)
    n_links = 2 * rows * cols - rows - cols
    host = mesh_host(rows, cols, uniform_delays(n_links, rng, 1, 6))
    array = embed_linear_array(host).host_array(name=f"embed({host.name})")
    assignment = assign_databases(kill_and_label(array), block=2, min_copies=2)
    plan = FaultPlan.random(
        array.n,
        seed=13,
        horizon=steps * 24,
        node_crash_rate=0.02,
        link_outage_rate=0.04,
        jitter_rate=0.06,
        drop_rate=0.06,
    )
    out = _time_faulted_engines(array, assignment, steps, plan, repeats, smoke)
    out["host"] = host.name
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized workloads")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_dense.json"),
        help="output JSON path (default: repo-root BENCH_dense.json)",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    if args.smoke:
        line_cfg = {"n": 96, "steps": 12}
        ring_cfg = {"n": 96, "steps": 12}
        graph_cfg = {"rows": 6, "cols": 6, "steps": 8}
    else:
        line_cfg = {"n": 192, "steps": 24}
        ring_cfg = {"n": 192, "steps": 24}
        graph_cfg = {"rows": 10, "cols": 10, "steps": 12}

    print(f"[bench_dense] cpus={cpus} smoke={args.smoke}")
    sections: dict = {}
    for name, fn, cfg in (
        ("line", bench_line, line_cfg),
        ("ring", bench_ring, ring_cfg),
        ("graph", bench_graph, graph_cfg),
    ):
        rec = fn(smoke=args.smoke, **cfg)
        sections[name] = rec
        print(
            f"[bench_dense] {name}: greedy {rec['greedy']['steps_per_sec']:,} "
            f"vs dense {rec['dense']['steps_per_sec']:,} steps/sec "
            f"-> dense {rec['dense_over_greedy']}x faster"
        )

    faulted: dict = {"smoke": args.smoke}
    for name, fn, cfg in (
        ("line", bench_faulted_line, line_cfg),
        ("ring", bench_faulted_ring, ring_cfg),
        ("graph", bench_faulted_graph, graph_cfg),
    ):
        rec = fn(smoke=args.smoke, **cfg)
        faulted[name] = rec
        print(
            f"[bench_dense] faulted/{name}: greedy "
            f"{rec['greedy']['steps_per_sec']:,} vs segmented dense "
            f"{rec['dense']['steps_per_sec']:,} steps/sec "
            f"-> dense {rec['dense_over_greedy']}x faster "
            f"({rec['fault_events']} fault events)"
        )
    sections["faulted"] = faulted

    payload = {
        "bench": "dense",
        "smoke": args.smoke,
        "cpus": cpus,
        "python": sys.version.split()[0],
        "sections": sections,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_dense] wrote {out}")

    failed = False
    for name, rec in sections.items():
        if name == "faulted":
            continue
        if rec["dense_over_greedy"] < 3.0:
            print(
                f"[bench_dense] FAIL: {name} section only "
                f"{rec['dense_over_greedy']}x greedy (< 3x)",
                file=sys.stderr,
            )
            failed = True
    for name in ("line", "ring", "graph"):
        rec = sections["faulted"][name]
        if rec["dense_over_greedy"] < 2.0:
            print(
                f"[bench_dense] FAIL: faulted/{name} section only "
                f"{rec['dense_over_greedy']}x greedy (< 2x)",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
