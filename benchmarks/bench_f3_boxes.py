"""F3 — Figure 3: the recursive box structure and schedule values."""

from conftest import run_experiment_bench


def test_f3_box_recursion(benchmark):
    result = run_experiment_bench(benchmark, "f3")
    assert result.summary["k_max"] >= 2
    assert result.summary["slowdown bound"] > 0
