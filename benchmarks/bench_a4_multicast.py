"""A4 — ablation: multicast boundary streams cut pebble-hops at equal
correctness and makespan."""

from conftest import run_experiment_bench


def test_a4_multicast_ablation(benchmark):
    run_experiment_bench(
        benchmark,
        "a4",
        expected_true=["multicast never hurts makespan (within 5%)"],
    )
