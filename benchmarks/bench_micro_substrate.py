"""Substrate microbenchmarks (real repeated-round timings).

The experiment benches run once (they are end-to-end simulations); the
substrate hot paths, by contrast, are microbenchmarked properly so
performance regressions in the event queue, link pipes, mixing
primitives or the executor inner loop are visible across commits —
the optimisation-guide discipline of "no optimisation without
measuring".
"""

import numpy as np

from repro.core.assignment import Assignment
from repro.core.dense import DenseExecutor
from repro.core.executor import GreedyExecutor
from repro.machine.guest import GuestArray
from repro.machine.host import HostArray
from repro.machine.mixing import mix4_s, splitmix_v
from repro.machine.programs import CounterProgram
from repro.netsim.events import EventQueue
from repro.netsim.links import LinkPipe


def test_eventqueue_push_pop(benchmark):
    def run():
        q = EventQueue()
        for i in range(2000):
            q.push(i % 97, 0, i)
        while q:
            q.pop()

    benchmark(run)


def test_linkpipe_inject(benchmark):
    def run():
        pipe = LinkPipe(delay=5, bandwidth=4)
        t = 0
        for i in range(5000):
            t += i % 2
            pipe.inject(t)

    benchmark(run)


def test_scalar_mixing(benchmark):
    def run():
        acc = 0
        for i in range(2000):
            acc = mix4_s(acc, i, i * 3, i * 7)
        return acc

    benchmark(run)


def test_vector_mixing_row(benchmark):
    x = np.arange(4096, dtype=np.uint64)

    def run():
        return splitmix_v(x)

    benchmark(run)


def test_reference_executor_throughput(benchmark):
    guest = GuestArray(256, CounterProgram())

    def run():
        return guest.run_reference(64)

    benchmark(run)


def test_greedy_executor_throughput(benchmark):
    host = HostArray.uniform(32, 2)
    asg = Assignment([(2 * i + 1, 2 * i + 4) for i in range(31)] + [(63, 64)], 64)
    asg.validate()
    prog = CounterProgram()

    def run():
        return GreedyExecutor(host, asg, prog, 16).run()

    result = benchmark(run)
    benchmark.extra_info["pebbles"] = result.stats.pebbles


def test_dense_executor_throughput(benchmark):
    # Same workload as the greedy row above, so the two benchmark
    # entries read off the engine-tier ratio directly.
    host = HostArray.uniform(32, 2)
    asg = Assignment([(2 * i + 1, 2 * i + 4) for i in range(31)] + [(63, 64)], 64)
    asg.validate()
    prog = CounterProgram()

    def run():
        return DenseExecutor(host, asg, prog, 16).run()

    result = benchmark(run)
    benchmark.extra_info["pebbles"] = result.stats.pebbles
