#!/usr/bin/env python
"""Sweep-engine and execution-tier benchmark.

Unlike the ``bench_*`` experiment benchmarks (pytest-benchmark
wrappers), this is a standalone script — it is the perf baseline the
PR-acceptance gates read:

* **sweep throughput** — one grid of OVERLAP configs run through
  :class:`repro.runner.SweepRunner` serially and with worker
  processes (cache off for both); reports configs/sec and the
  parallel-over-serial speedup, plus the chunking/pool-reuse facts
  the parallel path relies on;
* **executor steps/sec** — one fixed single simulation through the
  public front-end, reporting pebbles computed per wall-clock second;
* **engine tiers** — the dense fault-free fast path vs the greedy
  event-driven engine on the same host/assignment, isolating the
  executors themselves (setup is built once outside the timer).

All wall times are the median of three timed passes after a warm-up
pass, so one scheduler hiccup cannot fake a regression (or hide one).

Results go to ``BENCH_sweep.json`` (``--out`` to override)::

    PYTHONPATH=src python benchmarks/bench_sweep.py --smoke

``--smoke`` shrinks the grid for CI and stamps ``"smoke": true`` into
every throughput record — absolute steps/sec from a smoke grid is not
comparable to the full workload, and ``scripts/bench_compare.py``
skips absolute-throughput checks on smoke-tagged records.  The
speedup assertion only applies when the machine actually has >= 4
CPUs *and* at least as many CPUs as workers — an oversubscribed or
single-core runner cannot parallelise compute-bound work, so its sweep
section is smoke-tagged and the comparison skipped (the numbers are
still recorded honestly).  The dense-over-greedy ratio gate applies
everywhere — it is a single-core property.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np

from repro.core.assignment import assign_databases
from repro.core.dense import DenseExecutor
from repro.core.executor import GreedyExecutor
from repro.core.killing import kill_and_label
from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray
from repro.machine.programs import get_program
from repro.runner import SweepRunner
from repro.topology.delays import scale_to_average, uniform_delays

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _bench_host(n: int, d_target: float, seed: int) -> HostArray:
    rng = np.random.default_rng(seed)
    return HostArray(scale_to_average(uniform_delays(n - 1, rng, 1, 8), d_target))


def _median(walls: list[float]) -> float:
    return statistics.median(walls)


def _sweep_task(cfg: dict) -> dict:
    """One sweep grid point: a full OVERLAP simulation.

    The ``seed`` key is injected by the runner's seeding contract
    (``seed_key="seed"``), so the grid also exercises deterministic
    content-derived seeding.
    """
    host = _bench_host(cfg["n"], cfg["d"], cfg["seed"] % (2**32))
    res = simulate_overlap(host, steps=cfg["steps"], block=2, verify=False)
    return {
        "slowdown": res.slowdown,
        "pebbles": res.exec_result.stats.pebbles,
        "makespan": res.exec_result.stats.makespan,
    }


def bench_executor(
    n: int, steps: int, repeats: int = 3, engine: str = "auto", smoke: bool = False
) -> dict:
    """Median-of-``repeats`` front-end throughput (after a warm-up)."""
    host = _bench_host(n, 8, seed=0)
    simulate_overlap(
        host, steps=max(4, steps // 4), block=2, verify=False, engine=engine
    )  # warm-up
    walls = []
    pebbles = 0
    resolved = engine
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = simulate_overlap(host, steps=steps, block=2, verify=False, engine=engine)
        walls.append(time.perf_counter() - t0)
        pebbles = res.exec_result.stats.pebbles
        resolved = res.engine
        res.exec_result.stats.tag_smoke(smoke)
    wall = _median(walls)
    return {
        "n": n,
        "steps": steps,
        "engine": resolved,
        "pebbles": pebbles,
        "median_wall_s": round(wall, 4),
        "best_wall_s": round(min(walls), 4),
        "steps_per_sec": round(pebbles / wall, 1),
        "smoke": smoke,
    }


def bench_engines(n: int, steps: int, repeats: int = 3, smoke: bool = False) -> dict:
    """Dense vs greedy engine on one workload; setup built once.

    Host, killing and assignment are constructed outside the timed
    region so the ratio measures the executors, not the shared setup.
    Both tiers produce bit-identical results (tests/test_dense.py);
    this records how much faster the dense tier buys that for.
    """
    host = _bench_host(n, 8, seed=0)
    assignment = assign_databases(kill_and_label(host), block=2)
    program = get_program("counter")

    out: dict = {"n": n, "steps": steps}
    for name, cls in (("greedy", GreedyExecutor), ("dense", DenseExecutor)):
        cls(host, assignment, program, steps).run()  # warm-up
        walls = []
        pebbles = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = cls(host, assignment, program, steps).run()
            walls.append(time.perf_counter() - t0)
            pebbles = res.stats.pebbles
            res.stats.tag_smoke(smoke)
        wall = _median(walls)
        out[name] = {
            "pebbles": pebbles,
            "median_wall_s": round(wall, 4),
            "steps_per_sec": round(pebbles / wall, 1),
            "smoke": smoke,
        }
    out["dense_over_greedy"] = round(
        out["dense"]["steps_per_sec"] / out["greedy"]["steps_per_sec"], 2
    )
    return out


def bench_sweep(
    n_configs: int,
    n: int,
    steps: int,
    workers: int,
    repeats: int = 3,
    smoke: bool = False,
) -> dict:
    """Serial vs parallel throughput over one config grid (cache off).

    One full warm-up pass per runner first: it pulls every import into
    the worker processes and spawns the persistent pool, so the timed
    passes measure steady-state throughput — the regime experiment
    sweeps actually run in — rather than one-time process start-up.
    """
    configs = [
        {"n": n, "steps": steps, "d": d}
        for d in [1, 2, 4, 8] * ((n_configs + 3) // 4)
    ][:n_configs]

    serial = SweepRunner(workers=1)
    parallel = SweepRunner(workers=workers)

    serial_results = serial.map(_sweep_task, configs, seed_key="seed")  # warm-up
    parallel_results = parallel.map(_sweep_task, configs, seed_key="seed")  # warm-up
    if serial_results != parallel_results:
        raise AssertionError("parallel sweep results differ from serial — determinism bug")

    serial_walls = []
    for _ in range(repeats):
        serial.map(_sweep_task, configs, seed_key="seed")
        serial_walls.append(serial.last_elapsed)
    parallel_walls = []
    for _ in range(repeats):
        parallel.map(_sweep_task, configs, seed_key="seed")
        parallel_walls.append(parallel.last_elapsed)

    serial_s = _median(serial_walls)
    parallel_s = _median(parallel_walls)
    return {
        "configs": len(configs),
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "serial_throughput": round(len(configs) / serial_s, 3),
        "parallel_throughput": round(len(configs) / parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "chunk_size": parallel.last_chunk_size,
        "pool_reuse": parallel.last_pool_reused,
        "results_identical": True,
        "smoke": smoke,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized grid")
    parser.add_argument("--workers", type=int, default=4, help="parallel worker count")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="output JSON path (default: repo-root BENCH_sweep.json)",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    if args.smoke:
        exec_cfg = {"n": 96, "steps": 12}
        engines_cfg = {"n": 96, "steps": 12}
        sweep_cfg = {"n_configs": 8, "n": 96, "steps": 12}
    else:
        exec_cfg = {"n": 192, "steps": 24}
        engines_cfg = {"n": 192, "steps": 24}
        sweep_cfg = {"n_configs": 16, "n": 128, "steps": 16}

    print(f"[bench_sweep] cpus={cpus} workers={args.workers} smoke={args.smoke}")
    executor = bench_executor(smoke=args.smoke, **exec_cfg)
    print(
        f"[bench_sweep] executor ({executor['engine']}): {executor['pebbles']} "
        f"pebbles in {executor['median_wall_s']}s (median) -> "
        f"{executor['steps_per_sec']:,} steps/sec"
    )
    engines = bench_engines(smoke=args.smoke, **engines_cfg)
    print(
        f"[bench_sweep] engines: greedy {engines['greedy']['steps_per_sec']:,} "
        f"vs dense {engines['dense']['steps_per_sec']:,} steps/sec "
        f"-> dense {engines['dense_over_greedy']}x faster"
    )
    # A machine with fewer CPUs than workers cannot demonstrate the
    # parallel speedup; record the numbers but smoke-tag the section so
    # downstream gates (here and in bench_compare) skip the comparison.
    sweep_smoke = args.smoke or cpus < args.workers
    sweep_res = bench_sweep(workers=args.workers, smoke=sweep_smoke, **sweep_cfg)
    print(
        f"[bench_sweep] sweep: serial {sweep_res['serial_s']}s, "
        f"{args.workers} workers {sweep_res['parallel_s']}s "
        f"-> speedup {sweep_res['speedup']}x "
        f"(chunk={sweep_res['chunk_size']}, pool_reuse={sweep_res['pool_reuse']})"
    )

    payload = {
        "bench": "sweep",
        "smoke": args.smoke,
        "cpus": cpus,
        "python": sys.version.split()[0],
        "executor": executor,
        "engines": engines,
        "sweep": sweep_res,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_sweep] wrote {out}")

    failed = False
    if engines["dense_over_greedy"] < 3.0:
        print(
            f"[bench_sweep] FAIL: dense engine only "
            f"{engines['dense_over_greedy']}x greedy (< 3x)",
            file=sys.stderr,
        )
        failed = True
    if (
        cpus >= 4
        and args.workers >= 4
        and not sweep_res["smoke"]
        and sweep_res["speedup"] < 2.0
    ):
        print(
            f"[bench_sweep] FAIL: speedup {sweep_res['speedup']}x < 2x "
            f"on a {cpus}-cpu machine",
            file=sys.stderr,
        )
        failed = True
    if cpus < 4:
        print(
            f"[bench_sweep] note: only {cpus} cpu(s) visible — speedup gate "
            "skipped (parallelism cannot beat the hardware)"
        )
    elif cpus < args.workers:
        print(
            f"[bench_sweep] note: {cpus} cpu(s) < {args.workers} workers — "
            "sweep section smoke-tagged, speedup gate skipped"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
