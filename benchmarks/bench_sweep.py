#!/usr/bin/env python
"""Sweep-engine and executor-hot-path benchmark.

Unlike the ``bench_*`` experiment benchmarks (pytest-benchmark
wrappers), this is a standalone script — it is the perf baseline the
PR-acceptance gates read:

* **sweep throughput** — one grid of OVERLAP configs run through
  :class:`repro.runner.SweepRunner` serially and with worker
  processes (cache off for both); reports configs/sec and the
  parallel-over-serial speedup;
* **executor steps/sec** — one fixed single simulation, reporting
  pebbles computed per wall-clock second (the inner-loop metric the
  hot-path optimisations target).

Results go to ``BENCH_sweep.json`` (``--out`` to override)::

    PYTHONPATH=src python benchmarks/bench_sweep.py --smoke

``--smoke`` shrinks the grid for CI.  The speedup assertion only
applies when the machine actually has >= 4 CPUs (a single-core runner
cannot parallelise compute-bound work, and the numbers say so
honestly).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np

from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray
from repro.runner import SweepRunner
from repro.topology.delays import scale_to_average, uniform_delays

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _bench_host(n: int, d_target: float, seed: int) -> HostArray:
    rng = np.random.default_rng(seed)
    return HostArray(scale_to_average(uniform_delays(n - 1, rng, 1, 8), d_target))


def _sweep_task(cfg: dict) -> dict:
    """One sweep grid point: a full OVERLAP simulation.

    The ``seed`` key is injected by the runner's seeding contract
    (``seed_key="seed"``), so the grid also exercises deterministic
    content-derived seeding.
    """
    host = _bench_host(cfg["n"], cfg["d"], cfg["seed"] % (2**32))
    res = simulate_overlap(host, steps=cfg["steps"], block=2, verify=False)
    return {
        "slowdown": res.slowdown,
        "pebbles": res.exec_result.stats.pebbles,
        "makespan": res.exec_result.stats.makespan,
    }


def bench_executor(n: int, steps: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` single-run executor throughput."""
    host = _bench_host(n, 8, seed=0)
    simulate_overlap(host, steps=max(4, steps // 4), block=2, verify=False)  # warm-up
    best = float("inf")
    pebbles = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = simulate_overlap(host, steps=steps, block=2, verify=False)
        best = min(best, time.perf_counter() - t0)
        pebbles = res.exec_result.stats.pebbles
    return {
        "n": n,
        "steps": steps,
        "pebbles": pebbles,
        "best_wall_s": round(best, 4),
        "steps_per_sec": round(pebbles / best, 1),
    }


def bench_sweep(n_configs: int, n: int, steps: int, workers: int) -> dict:
    """Serial vs parallel throughput over one config grid (cache off)."""
    configs = [
        {"n": n, "steps": steps, "d": d}
        for d in [1, 2, 4, 8] * ((n_configs + 3) // 4)
    ][:n_configs]

    serial = SweepRunner(workers=1)
    serial_results = serial.map(_sweep_task, configs, seed_key="seed")
    serial_s = serial.last_elapsed

    parallel = SweepRunner(workers=workers)
    parallel_results = parallel.map(_sweep_task, configs, seed_key="seed")
    parallel_s = parallel.last_elapsed

    if serial_results != parallel_results:
        raise AssertionError("parallel sweep results differ from serial — determinism bug")
    return {
        "configs": len(configs),
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "serial_throughput": round(len(configs) / serial_s, 3),
        "parallel_throughput": round(len(configs) / parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "results_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized grid")
    parser.add_argument("--workers", type=int, default=4, help="parallel worker count")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="output JSON path (default: repo-root BENCH_sweep.json)",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    if args.smoke:
        exec_cfg = {"n": 96, "steps": 12}
        sweep_cfg = {"n_configs": 8, "n": 96, "steps": 12}
    else:
        exec_cfg = {"n": 192, "steps": 24}
        sweep_cfg = {"n_configs": 16, "n": 128, "steps": 16}

    print(f"[bench_sweep] cpus={cpus} workers={args.workers} smoke={args.smoke}")
    executor = bench_executor(**exec_cfg)
    print(
        f"[bench_sweep] executor: {executor['pebbles']} pebbles in "
        f"{executor['best_wall_s']}s -> {executor['steps_per_sec']:,} steps/sec"
    )
    sweep_res = bench_sweep(workers=args.workers, **sweep_cfg)
    print(
        f"[bench_sweep] sweep: serial {sweep_res['serial_s']}s, "
        f"{args.workers} workers {sweep_res['parallel_s']}s "
        f"-> speedup {sweep_res['speedup']}x"
    )

    payload = {
        "bench": "sweep",
        "smoke": args.smoke,
        "cpus": cpus,
        "python": sys.version.split()[0],
        "executor": executor,
        "sweep": sweep_res,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_sweep] wrote {out}")

    if cpus >= 4 and args.workers >= 4 and sweep_res["speedup"] < 2.0:
        print(
            f"[bench_sweep] FAIL: speedup {sweep_res['speedup']}x < 2x "
            f"on a {cpus}-cpu machine",
            file=sys.stderr,
        )
        return 1
    if cpus < 4:
        print(
            f"[bench_sweep] note: only {cpus} cpu(s) visible — speedup gate "
            "skipped (parallelism cannot beat the hardware)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
