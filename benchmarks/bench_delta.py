#!/usr/bin/env python
"""Delta-driven sweep benchmark: suffix replay vs full recompute.

The workload is the incremental re-simulation scenario of
``repro.experiments.x5``: a faulted run whose sweep config carries the
fault-plan spec and recovery-policy knobs in structured form, plus a
one-knob edit grid (late fault-event shifts, ``restart_penalty``
tweaks, horizon extensions).  One base entry is seeded into a sweep
cache with its checkpoint sidecar; the timed passes then map the edit
grid

* **delta** — against a copy of the seeded cache, so every edit
  restores a checkpoint from the cached neighbour and replays only the
  suffix (``SweepRunner(delta=True)``, the default);
* **full** — against an empty cache with ``delta=False``, the plain
  miss path.

Each timed pass starts from a pristine cache copy (a delta hit writes
the edited config back as a regular entry, so reusing a cache would
time plain hits, not replays).  Wall times are the median of three
passes; the two passes' row lists are asserted equal element-by-element
so a timing run can never drift from the bit-identity contract
unnoticed (tests/test_delta.py gates the same contract per checkpoint).

Results go to ``BENCH_delta.json`` (``--out`` to override)::

    PYTHONPATH=src python benchmarks/bench_delta.py --smoke

``--smoke`` shrinks the workload for CI and stamps ``"smoke": true``;
``scripts/bench_compare.py`` relaxes the speedup floor on smoke records
(tiny runs spend comparatively more time in cache IO than in replay)
but requires zero fallbacks everywhere.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import statistics
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.core.overlap import simulate_overlap  # noqa: E402
from repro.experiments.x5 import _edit_point  # noqa: E402
from repro.machine.host import HostArray  # noqa: E402
from repro.netsim.faults import FaultPlan  # noqa: E402
from repro.runner import SweepRunner  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def bench_base(n: int, steps: int) -> dict:
    """A base config whose faults land *late* in the run.

    ``repro.experiments.x5.base_config`` guesses its horizon, which
    puts the scripted faults mid-run; for the benchmark we probe the
    fault-free makespan first and script delay-jitter spikes around
    90% of it (no crashes, outages or drops: their recovery/retry
    tails stretch the run ~30% past the fault times, which would make
    every "suffix" a third of the run).  A one-knob edit then
    invalidates only the final ~10% of the run, which is what the
    incremental-edit loop looks like in practice: late-run what-ifs
    against a settled prefix.
    """
    host = HostArray.uniform(n)
    probe = simulate_overlap(host, steps=steps, min_copies=2, verify=False)
    mk = probe.exec_result.stats.makespan
    mid = max(2, n // 2)
    plan = (
        FaultPlan.empty()
        .jitter(mid, int(mk * 0.88), duration=2, extra=1)
        .jitter(min(n - 2, mid + 2), int(mk * 0.90), duration=2, extra=2)
        .jitter(max(0, mid - 3), int(mk * 0.92), duration=2, extra=1)
        .declare_horizon(max(4 * mk, 64))
    )
    return {
        "n": n,
        "steps": steps,
        "faults": plan.to_spec(),
        "policy": {
            "retry_factor": 4.0,
            "max_retries": 32,
            "restart_penalty": 8,
            "watchdog_factor": 8.0,
        },
        "verify": False,
    }


def one_knob_grid(base: dict, k: int) -> list[dict]:
    """``k`` edits of ``base`` moving the latest fault event later by
    1..k steps — the canonical "nudge one knob, re-sweep" loop.  Every
    edit's blast radius is the (late) event time, so only a short
    suffix needs replaying."""
    out = []
    for i in range(1, k + 1):
        cfg = json.loads(json.dumps(base))
        ev = max(cfg["faults"]["events"], key=lambda e: e["time"])
        ev["time"] += i
        out.append(cfg)
    return out


def _timed_maps(make_runner, edits: list[dict], repeats: int):
    """Median wall seconds mapping ``edits`` through fresh runners.

    ``make_runner(i)`` must return a runner whose cache state is
    pristine for repeat ``i`` — timing is only meaningful on the first
    encounter with each config.
    """
    walls, rows, last = [], None, None
    for i in range(repeats):
        runner = make_runner(i)
        t0 = time.perf_counter()
        got = runner.map(_edit_point, edits)
        walls.append(time.perf_counter() - t0)
        if rows is None:
            rows = got
        elif got != rows:
            raise AssertionError("benchmark repeats disagree")
        last = runner
    return statistics.median(walls), rows, last


def bench_one_knob(
    n: int, steps: int, k: int, repeats: int = 3, smoke: bool = False
) -> dict:
    base = bench_base(n, steps)
    edits = one_knob_grid(base, k)

    with tempfile.TemporaryDirectory(prefix="bench_delta_") as tmp:
        tmp = pathlib.Path(tmp)
        seed_root = tmp / "seed"
        seeder = SweepRunner(cache_dir=str(seed_root), delta=True)
        t0 = time.perf_counter()
        seeder.map(_edit_point, [base])
        seed_wall = time.perf_counter() - t0

        def fresh_delta(i: int) -> SweepRunner:
            work = tmp / f"delta{i}"
            shutil.copytree(seed_root, work)
            return SweepRunner(cache_dir=str(work), delta=True)

        def fresh_full(i: int) -> SweepRunner:
            # The full-recompute *miss path*: delta stays enabled (so
            # the run captures checkpoints and writes sidecars, exactly
            # like the delta pass's bookkeeping) but the cache is empty
            # — there is no neighbour to replay from.
            return SweepRunner(cache_dir=str(tmp / f"full{i}"), delta=True)

        delta_wall, delta_rows, delta_runner = _timed_maps(
            fresh_delta, edits, repeats
        )
        full_wall, full_rows, _ = _timed_maps(fresh_full, edits, repeats)

    if delta_rows != full_rows:
        raise AssertionError(
            "delta replay diverged from full recompute:\n"
            f"{json.dumps(delta_rows, indent=1)}\nvs\n"
            f"{json.dumps(full_rows, indent=1)}"
        )
    frac = delta_runner.last_replayed_fraction
    return {
        "n": n,
        "steps": steps,
        "grid": k,
        "base_makespan": delta_rows[0]["makespan"],
        "seed_wall_s": round(seed_wall, 4),
        "delta_wall_s": round(delta_wall, 4),
        "full_wall_s": round(full_wall, 4),
        "speedup": round(full_wall / delta_wall, 2),
        "delta_hits": delta_runner.last_delta_hits,
        "delta_fallbacks": delta_runner.last_delta_fallbacks,
        "replayed_fraction": None if frac is None else round(frac, 4),
        "results_identical": True,
        "smoke": smoke,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized workload")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_delta.json"),
        help="output JSON path (default: repo-root BENCH_delta.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        cfg = {"n": 48, "steps": 32, "k": 4}
    else:
        # Large enough that simulation dominates the per-config fixed
        # costs (setup, digesting, cache IO) the replay cannot shrink.
        cfg = {"n": 192, "steps": 96, "k": 6}

    print(f"[bench_delta] one-knob grid smoke={args.smoke} {cfg}")
    rec = bench_one_knob(smoke=args.smoke, **cfg)
    frac = rec["replayed_fraction"]
    print(
        f"[bench_delta] full {rec['full_wall_s']}s vs delta "
        f"{rec['delta_wall_s']}s -> {rec['speedup']}x speedup "
        f"({rec['delta_hits']} replays, {rec['delta_fallbacks']} fallbacks, "
        f"{'n/a' if frac is None else f'{100 * frac:.0f}%'} of run replayed)"
    )

    payload = {
        "bench": "delta",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "sections": {"one_knob": rec},
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_delta] wrote {out}")

    failed = False
    floor = 1.2 if args.smoke else 2.0
    if rec["speedup"] < floor:
        print(
            f"[bench_delta] FAIL: only {rec['speedup']}x over full "
            f"recompute (< {floor}x)",
            file=sys.stderr,
        )
        failed = True
    if rec["delta_hits"] < cfg["k"] or rec["delta_fallbacks"]:
        print(
            f"[bench_delta] FAIL: {rec['delta_hits']}/{cfg['k']} replays, "
            f"{rec['delta_fallbacks']} fallbacks (expected all hits, none)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
