#!/usr/bin/env python
"""Telemetry overhead benchmark: the disabled path must stay free.

The telemetry layer's core promise is that *not* using it costs
(essentially) nothing: the greedy executor only dispatches to its
instrumented loop when a timeline is attached, and the dense executor
feeds telemetry from its event buckets strictly after the timed
simulation.  This script measures both sides of that promise:

* **disabled overhead** — the same workload through each engine with
  ``telemetry=None``, interleaved A/B against a second identical
  disabled pass; the A/B spread is the noise floor that makes the gate
  honest (a machine whose identical runs differ by 3% cannot certify
  a 2% bound, and the gate widens accordingly);
* **enabled cost** — the same workload with a
  :class:`~repro.telemetry.timeline.MetricsTimeline` attached, reported
  for the docs (no gate: enabled runs are opt-in diagnostics);
* **bit-identity** — disabled and enabled runs must produce the same
  stats and value digests for both engines (hard failure otherwise).

The gate: disabled-path wall time within ``--gate-pct`` (default 2%)
of the interleaved control, per engine, using median-of-``--repeats``
after a warm-up.  Results go to ``BENCH_telemetry.json``::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np

from repro.core.assignment import assign_databases
from repro.core.dense import DenseExecutor
from repro.core.executor import GreedyExecutor
from repro.core.killing import kill_and_label
from repro.machine.host import HostArray
from repro.machine.programs import get_program
from repro.telemetry import MetricsTimeline
from repro.topology.delays import scale_to_average, uniform_delays

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_ENGINES = {"greedy": GreedyExecutor, "dense": DenseExecutor}


def _bench_host(n: int, d_target: float, seed: int = 0) -> HostArray:
    rng = np.random.default_rng(seed)
    return HostArray(scale_to_average(uniform_delays(n - 1, rng, 1, 8), d_target))


def _time_variant(cls, setup, steps: int, telemetry_factory) -> float:
    """One timed run of ``cls`` with a fresh telemetry sink (or None)."""
    host, assignment, program = setup
    tl = telemetry_factory() if telemetry_factory else None
    t0 = time.perf_counter()
    cls(host, assignment, program, steps, telemetry=tl).run()
    return time.perf_counter() - t0


def bench_engine(name: str, n: int, steps: int, repeats: int) -> dict:
    """Median walls for disabled / interleaved-control / enabled runs.

    The two disabled variants (A = the gated measurement, B = the
    control) alternate within each repeat so drift (thermal, caches,
    another process waking up) lands on both equally instead of biasing
    whichever ran last.
    """
    cls = _ENGINES[name]
    host = _bench_host(n, 8)
    setup = (host, assign_databases(kill_and_label(host), block=2),
             get_program("counter"))

    # Warm-up: one of each variant.
    _time_variant(cls, setup, steps, None)
    _time_variant(cls, setup, steps, MetricsTimeline)

    disabled, control, enabled = [], [], []
    for i in range(repeats):
        # Alternate A/B order per repeat: whichever slot runs first in
        # a triplet inherits the previous enabled run's GC debris, so a
        # fixed order would bias one side systematically.
        first, second = (disabled, control) if i % 2 == 0 else (control, disabled)
        first.append(_time_variant(cls, setup, steps, None))
        second.append(_time_variant(cls, setup, steps, None))
        enabled.append(_time_variant(cls, setup, steps, MetricsTimeline))

    disabled_s = statistics.median(disabled)
    control_s = statistics.median(control)
    enabled_s = statistics.median(enabled)

    # Bit-identity check (outside the timed region).
    plain = cls(host, setup[1], setup[2], steps).run()
    timed = cls(host, setup[1], setup[2], steps, telemetry=MetricsTimeline()).run()
    if plain.stats.as_dict() != timed.stats.as_dict():
        raise AssertionError(f"{name}: telemetry changed the stats")
    if plain.value_digests != timed.value_digests:
        raise AssertionError(f"{name}: telemetry changed the computed values")

    pebbles = plain.stats.pebbles
    return {
        "engine": name,
        "n": n,
        "steps": steps,
        "pebbles": pebbles,
        "disabled_s": round(disabled_s, 5),
        "control_s": round(control_s, 5),
        "enabled_s": round(enabled_s, 5),
        "disabled_steps_per_sec": round(pebbles / disabled_s, 1),
        "noise_pct": round(100.0 * abs(disabled_s - control_s) / control_s, 2),
        "disabled_overhead_pct": round(
            100.0 * (disabled_s - control_s) / control_s, 2
        ),
        "enabled_overhead_pct": round(
            100.0 * (enabled_s - control_s) / control_s, 2
        ),
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized run")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--gate-pct",
        type=float,
        default=2.0,
        help="max disabled-path overhead vs interleaved control (%%)",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_telemetry.json"),
        help="output JSON path (default: repo-root BENCH_telemetry.json)",
    )
    args = parser.parse_args(argv)

    n, steps = (96, 12) if args.smoke else (192, 24)
    records = []
    failed = False
    for name in ("greedy", "dense"):
        rec = bench_engine(name, n, steps, args.repeats)
        records.append(rec)
        print(
            f"[bench_telemetry] {name}: disabled {rec['disabled_s']}s "
            f"(control {rec['control_s']}s, noise {rec['noise_pct']}%), "
            f"enabled {rec['enabled_s']}s "
            f"(+{rec['enabled_overhead_pct']}%)"
        )
        # The gate cannot be tighter than what the machine can measure:
        # widen it to the observed A/B noise floor when that is larger.
        gate = max(args.gate_pct, rec["noise_pct"])
        if rec["disabled_overhead_pct"] > gate:
            print(
                f"[bench_telemetry] FAIL: {name} disabled path "
                f"{rec['disabled_overhead_pct']}% over control "
                f"(gate {gate}%)",
                file=sys.stderr,
            )
            failed = True

    payload = {
        "bench": "telemetry",
        "smoke": args.smoke,
        "gate_pct": args.gate_pct,
        "python": sys.version.split()[0],
        "engines": records,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_telemetry] wrote {out}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
