"""E3 — Theorem 4: ``sqrt(d)`` slowdown on uniform-delay hosts.

The central scaling result: the log-log exponent of slowdown vs d must
sit near 0.5 and every point must respect the 5d-per-round phased
bound.
"""

from conftest import run_experiment_bench


def test_e3_sqrt_d_scaling(benchmark):
    result = run_experiment_bench(
        benchmark,
        "e3",
        expected_true=["beats naive at d >= 64", "all below phased bound"],
    )
    assert 0.35 <= result.summary["log-log exponent (paper: 0.5)"] <= 0.7
