"""X4 — the block-factor planner's recommendations vs measured
optima across host archetypes."""

from conftest import run_experiment_bench


def test_x4_planner_validation(benchmark):
    result = run_experiment_bench(
        benchmark, "x4", expected_true=["recommendation within one rung everywhere"]
    )
    assert result.summary["worst regret (planned vs best)"] <= 1.6
