"""F1 — Figure 1: pebble dependency structure and cone growth."""

from conftest import run_experiment_bench


def test_f1_pebble_dependencies(benchmark):
    run_experiment_bench(
        benchmark, "f1", expected_true=["cone width grows by 2 per step"]
    )
