"""E4 — Theorem 5: composing Theorem 4 with OVERLAP cuts the ``d_ave``
exponent from ~1 toward ~0.5."""

from conftest import run_experiment_bench


def test_e4_composition(benchmark):
    result = run_experiment_bench(
        benchmark, "e4", expected_true=["composition wins at large d"]
    )
    comp = result.summary["composed exponent (paper: ~0.5)"]
    plain = result.summary["plain exponent (paper: ~1)"]
    assert comp < plain
    assert comp <= 0.8
