"""E5 — Theorem 6 on general bounded-degree hosts, plus the Section-4
clique-chain counterexample (unbounded degree defeats the theorem)."""

from conftest import run_experiment_bench


def test_e5_general_hosts(benchmark):
    run_experiment_bench(
        benchmark,
        "e5",
        expected_true=[
            "all dilations <= 3 (Fact 3)",
            "clique-chain slowdowns exceed n^(1/4)",
        ],
    )
