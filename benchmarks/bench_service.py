#!/usr/bin/env python
"""Service benchmark: request latency, throughput, coalescing identity.

Drives a real :class:`repro.service.SimulationService` (in-process —
the TCP framing is not what's being measured) through the request mix
the service exists for:

* **cold pass** — every distinct config submitted once against an
  empty cache: the full-compute miss path; per-request wall latencies.
* **warm passes** — the same configs re-submitted for several rounds:
  every request is an in-memory LRU hit; these latencies are the
  "serving is essentially free" claim, gated as ``hit_speedup_p50``
  (cache-hit p50 must be >= 20x cheaper than a cold miss).
* **sustained throughput** — several concurrent clients replaying the
  warm config set; total requests / wall = ``requests_per_sec``.
* **coalescing identity** — one fresh config submitted by many
  concurrent clients must run **once** (``coalesced_executions``) and
  every response, plus an independent submission on a separate fresh
  service, must serialise to identical bytes (``results_identical``).

Results go to ``BENCH_service.json`` (``--out`` to override)::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke

``--smoke`` shrinks the simulated configs for CI and stamps
``"smoke": true``.  The latency *ratio* and identity gates apply smoke
or not (both sides of the ratio shrink together);
``scripts/bench_compare.py`` re-checks them from the artifact.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.runner import SweepRunner, shutdown_pool  # noqa: E402
from repro.service import SimulationService  # noqa: E402
from repro.service.tasks import overlap_point  # noqa: E402
from repro.telemetry.service import percentile  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: cache-hit p50 must beat a cold-miss p50 by at least this factor
MIN_HIT_SPEEDUP = 20.0


def grid(n: int, steps: int, count: int) -> list[dict]:
    """``count`` distinct configs (the ``rep`` nonce varies the hash)."""
    return [
        {"n": n, "steps": steps, "verify": False, "rep": i}
        for i in range(count)
    ]


def _fresh_service(root: pathlib.Path, name: str) -> SimulationService:
    return SimulationService(
        SweepRunner(cache_dir=root / name, profile=True),
        max_queue=64,
        max_concurrency=4,
        per_client=64,
    )


async def _timed_submits(service, configs, client: str) -> list[float]:
    """Sequential submissions; per-request wall seconds."""
    out = []
    for cfg in configs:
        t0 = time.perf_counter()
        await service.submit(overlap_point, cfg, client=client)
        out.append(time.perf_counter() - t0)
    return out


async def bench(n: int, steps: int, count: int, rounds: int, clients: int, smoke: bool) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench_service_") as tmp:
        root = pathlib.Path(tmp)
        service = _fresh_service(root, "main")
        configs = grid(n, steps, count)

        # Cold pass: every request a full compute.
        misses = await _timed_submits(service, configs, "cold")
        assert service.metrics.served["compute"] == count

        # Warm passes: every request an in-memory hit.
        hits: list[float] = []
        for r in range(rounds):
            hits.extend(await _timed_submits(service, configs, f"warm-{r}"))
        assert service.metrics.served["memory"] == count * rounds

        # Sustained throughput: concurrent clients replaying the warm set.
        async def one_client(ci: int) -> int:
            done = 0
            for _ in range(rounds):
                for cfg in configs:
                    await service.submit(overlap_point, cfg, client=f"c{ci}")
                    done += 1
            return done

        t0 = time.perf_counter()
        totals = await asyncio.gather(*(one_client(i) for i in range(clients)))
        sustained_wall = time.perf_counter() - t0
        sustained_requests = sum(totals)

        # Coalescing: one fresh config, many concurrent duplicates.
        waiters = 8
        fresh = {"n": n, "steps": steps, "verify": False, "rep": "coalesce"}
        before = service.metrics.exec_compute
        coalesced = await asyncio.gather(
            *(
                service.submit(overlap_point, dict(fresh), client=f"w{i}")
                for i in range(waiters)
            )
        )
        executions = service.metrics.exec_compute - before

        # Independent submission on a separate service + cache.
        other = _fresh_service(root, "independent")
        independent = await other.submit(overlap_point, dict(fresh))
        blobs = {json.dumps(r, sort_keys=True) for r in coalesced}
        blobs.add(json.dumps(independent, sort_keys=True))
        identical = len(blobs) == 1

        service.metrics.reconcile(service.runner.profile)
        await service.close()
        await other.close()

    miss_p50 = percentile(misses, 0.50)
    hit_p50 = percentile(hits, 0.50)
    return {
        "n": n,
        "steps": steps,
        "distinct_configs": count,
        "warm_rounds": rounds,
        "clients": clients,
        "requests": count + count * rounds + sustained_requests + waiters,
        "miss_p50_ms": round(1e3 * miss_p50, 4),
        "miss_p99_ms": round(1e3 * percentile(misses, 0.99), 4),
        "hit_p50_ms": round(1e3 * hit_p50, 4),
        "hit_p99_ms": round(1e3 * percentile(hits, 0.99), 4),
        "hit_speedup_p50": round(miss_p50 / hit_p50, 1),
        "requests_per_sec": round(sustained_requests / sustained_wall, 1),
        "coalesced_waiters": waiters,
        "coalesced_executions": executions,
        "results_identical": identical,
        "smoke": smoke,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized workload")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_service.json"),
        help="output JSON path (default: repo-root BENCH_service.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        cfg = {"n": 32, "steps": 8, "count": 6, "rounds": 3, "clients": 4}
    else:
        # Big enough that a cold miss is unambiguously simulation-bound;
        # the hit path cost is constant either way.
        cfg = {"n": 96, "steps": 24, "count": 12, "rounds": 5, "clients": 8}

    print(f"[bench_service] smoke={args.smoke} {cfg}")
    rec = asyncio.run(bench(smoke=args.smoke, **cfg))
    shutdown_pool()
    print(
        f"[bench_service] miss p50 {rec['miss_p50_ms']}ms vs hit p50 "
        f"{rec['hit_p50_ms']}ms -> {rec['hit_speedup_p50']}x; "
        f"{rec['requests_per_sec']} req/s sustained; "
        f"{rec['coalesced_waiters']} waiters -> "
        f"{rec['coalesced_executions']} execution(s)"
    )

    payload = {
        "bench": "service",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "sections": {"service": rec},
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_service] wrote {out}")

    failed = False
    if rec["hit_speedup_p50"] < MIN_HIT_SPEEDUP:
        print(
            f"[bench_service] FAIL: cache-hit p50 only "
            f"{rec['hit_speedup_p50']}x cheaper than a cold miss "
            f"(< {MIN_HIT_SPEEDUP}x)",
            file=sys.stderr,
        )
        failed = True
    if rec["coalesced_executions"] != 1:
        print(
            f"[bench_service] FAIL: {rec['coalesced_waiters']} duplicate "
            f"submissions ran {rec['coalesced_executions']} executions "
            "(expected exactly 1)",
            file=sys.stderr,
        )
        failed = True
    if not rec["results_identical"]:
        print(
            "[bench_service] FAIL: coalesced and independent submissions "
            "returned different bytes",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
