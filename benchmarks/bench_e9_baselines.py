"""E9 — the headline comparison: lockstep / single-copy / prior-art vs
OVERLAP as ``d_max`` grows, including the crossover point."""

from conftest import run_experiment_bench


def test_e9_baseline_crossover(benchmark):
    result = run_experiment_bench(benchmark, "e9")
    assert result.summary["1-copy exponent in d_max (~1)"] > 0.8
    assert result.summary["blocked OVERLAP exponent (<< 1)"] < 0.5
    assert result.summary["who wins at the largest F"] == "OVERLAP"
    assert result.summary["OVERLAP starts winning at F"] is not None
