"""E7 — Theorem 9: one copy per database pays ``d_max = sqrt(n)`` on
H1; redundant OVERLAP is d_max-independent and eventually wins."""

from conftest import run_experiment_bench


def test_e7_one_copy_lower_bound(benchmark):
    result = run_experiment_bench(
        benchmark,
        "e7",
        expected_true=[
            "measured >= audit bound everywhere",
            "1-copy slowdown tracks d_max",
            "OVERLAP slowdown is d_max-independent (flat)",
        ],
    )
    assert result.summary["redundancy starts winning at n"] is not None
