#!/usr/bin/env python
"""Tail-latency policy benchmark: redundant-issue racing and stealing.

Charts the redundancy sweet-spot crossover of the policy family in
``repro.core.racing`` on three grids:

* **racing** — high-jitter, high-drop fault plans (seeds x drop rates)
  where a dropped single-issue stream stalls until the retry timeout.
  Racing subscribes every needed column at two replica owners, so the
  second copy masks the stall; the gate requires its p99 step latency
  at least 1.25x better (i.e. <= 0.8x) than single-issue *on grid
  average*, never worse on any point, and the value digests identical
  (racing may change when pebbles complete, never their values).  The
  mean — not the min — carries the 1.25x floor because replica owners
  are adjacent on a linear host: when a drop lands on the route
  segment the two replica streams share, both stall together and that
  point degrades to parity, which no fanout-2 scheme can beat.
* **clean** — the same workload with no faults: the redundancy bill.
  Racing roughly doubles the message count for no latency win; the
  recorded message ratio documents why single-issue stays the default.
* **stealing** — skewed assignments (a few hosts handed a multiple of
  their neighbours' columns) with no faults, run on the dense tier
  with and without ``steal_rebalance``.  The gate requires the stolen
  makespan never worse than static on every seed.

A fourth record maps the w1 policy grid through ``SweepRunner`` at 1
and 2 workers and asserts the rows identical (``results_identical``).

Results go to ``BENCH_racing.json`` (``--out`` to override)::

    PYTHONPATH=src python benchmarks/bench_racing.py --smoke

``--smoke`` shrinks the grids for CI and stamps ``"smoke": true``; the
ratio gates apply smoke or not — they compare two runs of the same
workload, so both sides shrink together.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.core.assignment import Assignment, steal_rebalance  # noqa: E402
from repro.core.dense import build_executor  # noqa: E402
from repro.core.overlap import simulate_overlap  # noqa: E402
from repro.machine.host import HostArray  # noqa: E402
from repro.machine.programs import CounterProgram  # noqa: E402
from repro.netsim.faults import FaultPlan  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Racing must beat single-issue p99 by at least this factor on grid
# average (1.25x better == racing p99 <= 0.8x single), and must never
# be worse on any single point (shared-segment drops stall both
# replicas, so the worst point can degrade to parity — not below it).
MIN_P99_RATIO_MEAN = 1.25
MIN_P99_RATIO_POINT = 1.0


def _col_digests(res) -> dict:
    out: dict = {}
    for (_p, c), d in res.exec_result.value_digests.items():
        if out.setdefault(c, d) != d:
            raise AssertionError(f"replicas of column {c} disagree")
    return out


def _point(host, steps, plan, policy):
    res = simulate_overlap(
        host, steps=steps, min_copies=2, faults=plan, policy=policy
    )
    lat = res.exec_result.stats.step_latency_summary()
    return res, lat


def bench_racing(n: int, steps: int, seeds, drop_rates, smoke: bool) -> dict:
    host = HostArray.uniform(n, delay=3)
    horizon = 5 * steps
    points = []
    for seed in seeds:
        for dr in drop_rates:
            plan = FaultPlan.random(
                n,
                seed=seed,
                horizon=horizon,
                jitter_rate=0.9,
                drop_rate=dr,
                max_jitter=12,
            )
            base, base_lat = _point(host, steps, plan, "single")
            raced, raced_lat = _point(host, steps, plan, "racing")
            if _col_digests(raced) != _col_digests(base):
                raise AssertionError(
                    f"racing diverged from single-issue (seed={seed}, "
                    f"drop={dr})"
                )
            points.append(
                {
                    "seed": seed,
                    "drop_rate": dr,
                    "single_p99": base_lat["p99"],
                    "racing_p99": raced_lat["p99"],
                    "p99_ratio": round(base_lat["p99"] / raced_lat["p99"], 2),
                    "single_makespan": base.exec_result.stats.makespan,
                    "racing_makespan": raced.exec_result.stats.makespan,
                    "cancelled": raced.exec_result.stats.extras[
                        "cancelled_messages"
                    ],
                }
            )
    ratios = [p["p99_ratio"] for p in points]
    return {
        "n": n,
        "steps": steps,
        "grid": len(points),
        "points": points,
        "p99_ratio_min": min(ratios),
        "p99_ratio_mean": round(sum(ratios) / len(ratios), 2),
        "digest_identical": True,
        "smoke": smoke,
    }


def bench_clean(n: int, steps: int, smoke: bool) -> dict:
    """The redundancy bill: fault-free, bandwidth-bound ground."""
    host = HostArray.uniform(n, delay=3)
    base, base_lat = _point(host, steps, None, "single")
    raced, raced_lat = _point(host, steps, None, "racing")
    if _col_digests(raced) != _col_digests(base):
        raise AssertionError("racing diverged from single-issue (clean)")
    bs, rs = base.exec_result.stats, raced.exec_result.stats
    return {
        "n": n,
        "steps": steps,
        "single_messages": bs.messages,
        "racing_messages": rs.messages,
        "message_ratio": round(rs.messages / bs.messages, 2),
        "single_p99": base_lat["p99"],
        "racing_p99": raced_lat["p99"],
        "single_makespan": bs.makespan,
        "racing_makespan": rs.makespan,
        "digest_identical": True,
        "smoke": smoke,
    }


def _skewed(n: int, per: int, extra: int, hot: int, seed: int) -> Assignment:
    rng = random.Random(seed)
    sizes = [per] * n
    for p in rng.sample(range(n), hot):
        sizes[p] = per + extra
    ranges, lo = [], 1
    for s in sizes:
        ranges.append((lo, lo + s - 1))
        lo += s
    return Assignment(ranges, lo - 1)


def bench_stealing(n: int, steps: int, seeds, smoke: bool) -> dict:
    host = HostArray.uniform(n, delay=2)
    program = CounterProgram()
    points = []
    for seed in seeds:
        asg = _skewed(n, 3, 6, max(2, n // 8), seed)
        static = build_executor("auto", host, asg, program, steps).run()
        stolen_asg, moves = steal_rebalance(asg, host, seed=0)
        stolen = build_executor(
            "auto", host, stolen_asg, program, steps
        ).run()
        if _col_digests_exec(stolen) != _col_digests_exec(static):
            raise AssertionError(f"stealing diverged (seed={seed})")
        points.append(
            {
                "seed": seed,
                "static_makespan": static.stats.makespan,
                "stolen_makespan": stolen.stats.makespan,
                "moves": len(moves),
                "speedup": round(
                    static.stats.makespan / stolen.stats.makespan, 2
                ),
            }
        )
    speedups = [p["speedup"] for p in points]
    return {
        "n": n,
        "steps": steps,
        "grid": len(points),
        "points": points,
        "never_worse": all(
            p["stolen_makespan"] <= p["static_makespan"] for p in points
        ),
        "speedup_min": min(speedups),
        "speedup_mean": round(sum(speedups) / len(speedups), 2),
        "digest_identical": True,
        "smoke": smoke,
    }


def _col_digests_exec(exec_result) -> dict:
    out: dict = {}
    for (_p, c), d in exec_result.value_digests.items():
        if out.setdefault(c, d) != d:
            raise AssertionError(f"replicas of column {c} disagree")
    return out


def bench_workers(smoke: bool) -> dict:
    from repro.experiments.w1 import _policy_point
    from repro.runner import SweepRunner

    configs = [
        {
            "n": 24 if smoke else 48,
            "delay": 3,
            "steps": 4 if smoke else 8,
            "policy": pol,
            "max_jitter": 12,
            "jitter_rate": 0.9,
            "drop_rate": 0.3,
            "seed": 1996,
            "horizon": 40,
        }
        for pol in ("single", "racing", "stealing", "racing+stealing")
    ]
    serial = SweepRunner(workers=1).map(_policy_point, configs)
    pooled = SweepRunner(workers=2).map(_policy_point, configs)
    return {
        "grid": len(configs),
        "workers": 2,
        "results_identical": pooled == serial,
        "smoke": smoke,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-sized grids"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_racing.json"),
        help="output JSON path (default: repo-root BENCH_racing.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n, steps = 32, 8
        seeds, drops = (1996, 1997), (0.3, 0.6)
        steal_seeds = (1, 2)
    else:
        n, steps = 48, 16
        seeds, drops = (1996, 1997, 1998, 1999, 2000), (0.3, 0.6, 0.9)
        steal_seeds = (1, 2, 3, 4, 5)

    print(f"[bench_racing] racing grid: n={n} steps={steps} "
          f"{len(seeds)}x{len(drops)} points, smoke={args.smoke}")
    racing = bench_racing(n, steps, seeds, drops, args.smoke)
    print(
        f"[bench_racing] racing p99 ratio min {racing['p99_ratio_min']}x "
        f"mean {racing['p99_ratio_mean']}x over {racing['grid']} points"
    )
    clean = bench_clean(n, steps, args.smoke)
    print(
        f"[bench_racing] clean ground: racing costs "
        f"{clean['message_ratio']}x messages for p99 "
        f"{clean['single_p99']} -> {clean['racing_p99']}"
    )
    stealing = bench_stealing(n, steps, steal_seeds, args.smoke)
    print(
        f"[bench_racing] stealing: never_worse={stealing['never_worse']} "
        f"speedup mean {stealing['speedup_mean']}x over {stealing['grid']} "
        "skewed seeds"
    )
    workers = bench_workers(args.smoke)
    print(
        f"[bench_racing] worker identity: "
        f"results_identical={workers['results_identical']}"
    )

    payload = {
        "bench": "racing",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "sections": {
            "racing": racing,
            "clean": clean,
            "stealing": stealing,
            "workers": workers,
        },
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_racing] wrote {out}")

    failed = False
    if racing["p99_ratio_mean"] < MIN_P99_RATIO_MEAN:
        print(
            f"[bench_racing] FAIL: racing p99 only "
            f"{racing['p99_ratio_mean']}x better than single-issue on "
            f"grid average (< {MIN_P99_RATIO_MEAN}x)",
            file=sys.stderr,
        )
        failed = True
    if racing["p99_ratio_min"] < MIN_P99_RATIO_POINT:
        print(
            f"[bench_racing] FAIL: racing p99 {racing['p99_ratio_min']}x "
            f"on the worst grid point (< {MIN_P99_RATIO_POINT}x — racing "
            "made a point worse)",
            file=sys.stderr,
        )
        failed = True
    if not stealing["never_worse"]:
        print(
            "[bench_racing] FAIL: stealing made a skewed seed worse "
            "than static assignment",
            file=sys.stderr,
        )
        failed = True
    if not workers["results_identical"]:
        print(
            "[bench_racing] FAIL: policy sweep rows differ across "
            "worker counts",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
