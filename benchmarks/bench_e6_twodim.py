"""E6 — Theorems 7-8: 2-D guests on linear hosts, both cases of the
column-block simulation, verified bit-for-bit."""

from conftest import run_experiment_bench


def test_e6_two_dimensional(benchmark):
    run_experiment_bench(
        benchmark,
        "e6",
        expected_true=["all verified", "case-2 redundancy <= 3x (paper's factor)"],
    )
