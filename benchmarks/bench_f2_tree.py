"""F2 — Figure 2: the annotated interval tree on a concrete host."""

from conftest import run_experiment_bench


def test_f2_interval_tree(benchmark):
    result = run_experiment_bench(benchmark, "f2")
    assert result.summary["killed stage1"] >= 1  # the long links bite
    assert result.summary["root label n'"] > 0
