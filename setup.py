"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
the package installs in offline environments that lack the ``wheel``
package (``pip install -e .`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
