#!/usr/bin/env python
"""A tour of the Section-6 lower bounds.

Constructs the two adversarial hosts and demonstrates, computationally,
why bounding database copies caps how much latency can be hidden:

* **H1** (Theorem 9): single-copy assignments pay ``d_max = sqrt(n)``
  — the audit exhibits the adjacent databases split by a long link, and
  a real greedy run matches the bound; OVERLAP (allowed replicas) stays
  flat as ``n`` grows.
* **H2** (Theorem 10, Figures 5-6): even with two copies per database
  and constant load, the recursive box host forces ``Omega(log n)``;
  includes the Fact-4 separation check and the 4j-pebble zigzag path.

Run:  python examples/lower_bound_tour.py
"""

from repro.analysis.report import print_kv, print_table
from repro.core.baselines import simulate_single_copy, spread_assignment
from repro.core.executor import run_assignment
from repro.core.overlap import simulate_overlap
from repro.lower_bounds import (
    fact4_violations,
    h2_census,
    theorem9_audit,
    theorem10_bound,
    windowed_assignment,
    zigzag_is_dependency_path,
    zigzag_path,
)
from repro.lower_bounds.h2 import path_delay_bound
from repro.machine.programs import CounterProgram
from repro.topology.generators import h1_host, h2_host


def tour_h1() -> None:
    rows = []
    for n in (64, 256, 576):
        host = h1_host(n)
        single = simulate_single_copy(host, steps=10, verify=False)
        audit = theorem9_audit(single.assignment, host)
        overlap = simulate_overlap(host, steps=10, block=8, verify=False)
        rows.append(
            {
                "n": n,
                "d_max": host.d_max,
                "audit horn": audit.horn,
                "audit bound": round(audit.bound, 1),
                "1-copy measured": round(single.slowdown, 1),
                "OVERLAP (replicas)": round(overlap.slowdown, 1),
            }
        )
    print_table(rows, title="H1 / Theorem 9: one copy per database")


def tour_h2() -> None:
    h2 = h2_host(1024)
    print_kv(h2_census(h2), title="H2 / Figure 5 census")
    print_kv(
        {"Fact 4 violations": len(fact4_violations(h2))},
        title="Fact 4 (inter-segment separation)",
    )

    asg = windowed_assignment(h2.array.n, h2.array.n, copies=2)
    bound = theorem10_bound(h2, asg)
    result = run_assignment(h2.array, asg, CounterProgram(), 8)
    print_kv(
        {
            "assignment": "windowed, 2 copies, constant load",
            "case detected": bound["case"],
            "analytic Omega(log n) bound": round(bound["analytic_bound"], 2),
            "measured slowdown": round(result.stats.makespan / 8, 1),
            "log n": round(h2.log_n, 1),
            "d = sqrt(n)": h2.d,
        },
        title="H2 / Theorem 10: two copies, constant load",
    )

    path = zigzag_path(h2.array.n // 2, 4, 64)
    single = spread_assignment(h2.array.n, h2.array.n)
    print_kv(
        {
            "path length (4j, j=4)": len(path),
            "valid dependency chain": zigzag_is_dependency_path(path),
            "min delay along path (1-copy)": path_delay_bound(h2, single, path),
        },
        title="Figure 6: the zigzag path",
    )


def main() -> None:
    tour_h1()
    tour_h2()
    print(
        "\nMoral (the paper's): with one copy you pay d_max; with O(1) "
        "copies you still pay Omega(log n) on a bad host; dataflow "
        "computations, which any processor can recompute, dodge both — "
        "databases make latency hiding fundamentally harder."
    )


if __name__ == "__main__":
    main()
