#!/usr/bin/env python
"""Quickstart: hide the latency of a heterogeneous NOW.

Builds a 128-workstation host whose link delays are heavy-tailed (most
links fast, a few terrible — the paper's motivating scenario), then
simulates a unit-delay guest array running a database workload on it
three ways:

1. the lockstep baseline (slow everything to ``d_max``);
2. a single-copy distribution (no redundancy);
3. algorithm OVERLAP with redundant database replicas.

Every distributed run is verified bit-for-bit against a direct
execution of the guest.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HostArray, simulate_overlap
from repro.analysis.report import print_kv
from repro.core.baselines import lockstep_slowdown, simulate_single_copy
from repro.topology.delays import pareto_delays


def main() -> None:
    rng = np.random.default_rng(7)
    host = HostArray(pareto_delays(127, rng, alpha=1.1, cap=2048))
    print_kv(
        {
            "workstations": host.n,
            "average link delay d_ave": round(host.d_ave, 2),
            "worst link delay d_max": host.d_max,
        },
        title="The NOW",
    )

    steps = 16

    naive = lockstep_slowdown(host)
    single = simulate_single_copy(host, steps=steps)
    overlap = simulate_overlap(host, steps=steps, block=8)

    print_kv(
        {
            "lockstep (clock = d_max)": naive,
            "single copy, greedy": round(single.slowdown, 1),
            "OVERLAP (redundant replicas)": round(overlap.slowdown, 1),
            "OVERLAP guest size (work-preserving)": overlap.m,
            "OVERLAP replicas per database": round(
                overlap.assignment.redundancy(), 2
            ),
            "runs verified against direct execution": overlap.verified
            and single.verified,
        },
        title=f"Slowdown over {steps} guest steps",
    )

    advantage = naive / overlap.slowdown
    print(
        f"\nOVERLAP simulates a {overlap.m}-processor unit-delay guest on "
        f"this NOW {advantage:.1f}x faster than slowing the clock to the "
        f"worst link."
    )


if __name__ == "__main__":
    main()
