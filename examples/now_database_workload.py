#!/usr/bin/env python
"""A replicated key-value workload on a clustered NOW (Theorem 6).

The paper's motivating machine: tightly-coupled clusters of
workstations joined by slow long-haul links — an *arbitrary graph*, not
an array.  The pipeline is exactly Section 4's:

1. embed a linear array one-to-one in the cluster graph with dilation 3
   (Fact 3 / Sekanina's theorem);
2. run algorithm OVERLAP on the induced array;
3. each guest processor runs the ``keyed`` program — a small per-column
   key-value store whose reads and writes depend on the neighbours'
   pebbles, i.e. genuine database-model computation that cannot be
   recomputed without the right database replica.

Run:  python examples/now_database_workload.py
"""

from repro import simulate_overlap_on_graph
from repro.analysis.report import print_kv, print_table
from repro.core.baselines import lockstep_slowdown
from repro.machine.programs import KeyedStoreProgram
from repro.topology.embedding import embed_linear_array
from repro.topology.generators import now_cluster_host


def main() -> None:
    host = now_cluster_host(8, 8, intra_delay=1, inter_delay=48)
    print_kv(
        {
            "clusters x machines": "8 x 8",
            "intra-cluster delay": 1,
            "long-haul delay": 48,
            "graph average delay": round(host.d_ave, 2),
            "max degree": host.max_degree,
        },
        title="Clustered NOW",
    )

    embedding = embed_linear_array(host)
    print_kv(
        {
            "embedded array length": embedding.n,
            "dilation (Fact 3 promises <= 3)": embedding.dilation,
            "congestion": embedding.congestion,
            "induced d_ave": round(embedding.host_array().d_ave, 2),
        },
        title="Fact-3 embedding",
    )

    steps = 12
    results = []
    for block in (1, 4, 8):
        res = simulate_overlap_on_graph(
            host, program=KeyedStoreProgram(), steps=steps, block=block
        )
        results.append(
            {
                "block beta": block,
                "guest columns": res.m,
                "load": res.load,
                "slowdown": round(res.slowdown, 1),
                "efficiency": round(res.efficiency(), 3),
                "verified": res.verified,
            }
        )
    print_table(results, title=f"OVERLAP on the embedded array ({steps} steps)")

    arr = embedding.host_array()
    print(
        f"\nLockstep on this machine would cost {lockstep_slowdown(arr)}x; "
        f"blocked OVERLAP runs the replicated key-value guest at "
        f"{results[-1]['slowdown']}x while keeping every replica consistent "
        f"(bit-checked digests)."
    )


if __name__ == "__main__":
    main()
