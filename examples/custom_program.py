#!/usr/bin/env python
"""Bring your own guest program (the paper's "automatic" promise).

The whole point of automatic latency hiding is that the programmer
writes for the idealised unit-delay machine and never thinks about the
NOW's latencies.  This example writes a tiny epidemic/gossip model as a
plain step function, wraps it with ``program_from_step``, sanity-checks
determinism, and runs it through OVERLAP on a heterogeneous host —
replicas, scheduling, communication and bit-exact verification all
come from the library.

Run:  python examples/custom_program.py
"""

from repro.analysis.report import print_kv
from repro.core.overlap import simulate_overlap
from repro.machine.mixing import MASK
from repro.machine.udsl import check_determinism, program_from_step
from repro.topology.presets import wan


def gossip_step(i, t, state, left, up, right):
    """Each site keeps an infection counter; a step mixes the
    neighbourhood's rumours and escalates the local count when the
    mixed rumour has low bits set (a deterministic 'infection')."""
    rumour = (left * 3 + up * 5 + right * 7 + t) & MASK
    infected = (rumour & 0xF) < 4
    value = (rumour ^ state) & MASK
    update = 1 if infected else 0
    return value, update


def main() -> None:
    prog = program_from_step(
        gossip_step,
        init=lambda i: (i * 2654435761) & MASK,
        apply=lambda s, u: (s + u) & MASK,
        name="gossip",
    )
    check_determinism(prog)
    print("determinism check: ok")

    host = wan(96, seed=2)
    print_kv(
        {"host": host.name, "d_ave": round(host.d_ave, 2), "d_max": host.d_max},
        title="Host",
    )
    result = simulate_overlap(host, program=prog, steps=12, block=4)
    print_kv(
        {
            "guest sites": result.m,
            "slowdown": round(result.slowdown, 1),
            "naive (d_max+1)": host.d_max + 1,
            "replicas per site": round(result.assignment.redundancy(), 2),
            "bit-exact verified": result.verified,
        },
        title="OVERLAP run",
    )
    print(
        "\nThe step function never mentions delays, replicas or messages — "
        "that is the paper's contract."
    )


if __name__ == "__main__":
    main()
