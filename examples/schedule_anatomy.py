#!/usr/bin/env python
"""Anatomy of an OVERLAP execution: watch latency being hidden.

Traces a blocked OVERLAP run on a host with one terrible link and
renders (a) the ASCII space-time diagram — host positions left to
right, time top to bottom — and (b) the per-guest-row completion
profile, whose burst/pause rhythm is exactly the box-recursion of the
paper's schedule: pebbles flow freely inside overlap windows, then the
wavefront pauses while boundary streams cross the long link, once per
window instead of once per row.

Run:  python examples/schedule_anatomy.py
"""

from repro.analysis.report import print_kv
from repro.core.assignment import assign_databases
from repro.core.executor import GreedyExecutor
from repro.core.killing import kill_and_label
from repro.machine.host import HostArray
from repro.machine.programs import CounterProgram
from repro.netsim.trace import Trace


def run_traced(block: int, steps: int = 24):
    delays = [1] * 63
    delays[31] = 256  # the terrible link, at the top-level split
    host = HostArray(delays)
    killing = kill_and_label(host)
    assignment = assign_databases(killing, block=block)
    trace = Trace()
    executor = GreedyExecutor(
        host, assignment, CounterProgram(), steps, trace=trace
    )
    executor.run()
    return host, trace


def main() -> None:
    steps = 24
    for block in (1, 8):
        host, trace = run_traced(block, steps)
        print(f"\n===== block beta = {block} (d_max = {host.d_max}) =====")
        print_kv(trace.summary(), title="run")
        print("\nspace-time diagram (x: host position, y: time):")
        print(trace.spacetime_ascii(host.n, width=64, height=14))
        per_row = trace.per_row_slowdown()
        profile = " ".join(f"{inc:>3}" for _, inc in per_row)
        print(f"\nper-row host steps: {profile}")
        print(f"slowdown: {trace.makespan / steps:.1f}")

    print(
        "\nWith beta=1 the overlap window at the long link is ~2 columns, "
        "so nearly every row pays the 256-step crossing (big, regular "
        "per-row costs).  With beta=8 the window is ~18 columns: rows "
        "complete in bursts with one 256-step pause per window — the "
        "paper's latency hiding, visible."
    )


if __name__ == "__main__":
    main()
