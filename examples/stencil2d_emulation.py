#!/usr/bin/env python
"""Emulating a 2-D stencil machine on a linear host (Section 5).

A 16x16 unit-delay guest array runs a stencil-with-local-store program
(every cell mixes its neighbourhood into a local database each step —
think relaxation sweeps that journal into per-cell state).  The host is
a linear array with uniform link delay; we sweep the processor count to
cross from case 1 of Theorem 7 (one guest column per host processor)
into case 2 (column blocks with redundant wedge recomputation).

Run:  python examples/stencil2d_emulation.py
"""

from repro.analysis.report import print_kv, print_table
from repro.core.twodim import simulate_2d_on_uniform_array, twodim_slowdown_estimate


def main() -> None:
    m, d = 16, 6
    print_kv(
        {
            "guest": f"{m}x{m} array, unit delays",
            "host link delay": d,
            "program": "stencil2d (database model)",
        },
        title="Setup",
    )

    rows = []
    for n0 in (16, 8, 4, 2):
        res = simulate_2d_on_uniform_array(m, n0, d, steps=2 * max(1, m // n0))
        rows.append(
            {
                "host procs": n0,
                "cols/proc g": res.g,
                "case": 1 if res.g == 1 else 2,
                "slowdown": round(res.slowdown, 1),
                "thm7 estimate": round(twodim_slowdown_estimate(m, n0, d), 1),
                "redundant work": f"{res.pebbles / (m * m * res.steps):.2f}x",
                "verified": res.verified,
            }
        )
    print_table(rows, title="Theorem 7 sweep (case 1 -> case 2)")

    print(
        "\nFewer processors mean bigger column blocks: each batch "
        "recomputes a shrinking halo wedge (up to ~3x work, the paper's "
        "factor) so the long links are crossed once per g steps instead "
        "of every step. All runs verified cell-by-cell against the "
        "direct 2-D execution."
    )


if __name__ == "__main__":
    main()
