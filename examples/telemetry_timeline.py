#!/usr/bin/env python
"""Watch OVERLAP hide latency, step by step.

Runs one OVERLAP simulation with a :class:`MetricsTimeline` attached
and renders what the paper describes qualitatively: while the host
computes pebbles at full tilt, a standing population of pebbles is
simultaneously *in flight* on the links — computation and
communication overlapped, which is the entire trick.

The script

1. simulates a 96-workstation host with telemetry enabled (the auto
   engine picks the dense tier; the timeline is identical either way),
2. reconciles the per-step counters against the run's ``SimStats``
   (they must sum exactly — this is asserted, not assumed),
3. draws an ASCII activity timeline (pebbles/step vs pebbles on the
   wire),
4. writes a Chrome ``trace_event`` file — open it at
   https://ui.perfetto.dev (or chrome://tracing) to scrub through the
   run interactively.

Run:  python examples/telemetry_timeline.py [trace.json]
"""

import sys

import numpy as np

from repro import HostArray, simulate_overlap
from repro.analysis.report import print_kv
from repro.telemetry import MetricsTimeline, write_chrome_trace
from repro.topology.delays import scale_to_average, uniform_delays


def main() -> None:
    rng = np.random.default_rng(11)
    host = HostArray(scale_to_average(uniform_delays(95, rng, 1, 8), 6.0))

    timeline = MetricsTimeline()
    result = simulate_overlap(host, steps=16, block=2, telemetry=timeline)

    totals = timeline.reconcile(result.exec_result.stats)  # exact, or raises
    summary = timeline.summary()
    print_kv(
        {
            "engine": result.engine,
            "slowdown": round(result.slowdown, 1),
            "pebbles computed": totals["pebbles"],
            "... of which recomputed replicas": totals["redundant"],
            "link hops": totals["hops"],
            "peak pebbles in flight": summary["peak_in_flight"],
            "mean utilization": summary["mean_utilization"],
        },
        title="One OVERLAP run, reconciled",
    )

    print()
    print("Latency being hidden: computation (pebbles) stays busy while")
    print("the links (in_flight) stay loaded — neither waits for the other.")
    print()
    print(timeline.ascii_timeline(("pebbles", "in_flight"), width=68, height=12))

    out = sys.argv[1] if len(sys.argv) > 1 else "telemetry_timeline_trace.json"
    doc = write_chrome_trace(out, timeline=timeline, label="example run")
    print(f"\nwrote {len(doc['traceEvents'])} trace events to {out}")
    print("open in https://ui.perfetto.dev to scrub through the run")


if __name__ == "__main__":
    main()
