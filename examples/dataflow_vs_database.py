#!/usr/bin/env python
"""Why databases make latency hiding harder (the paper's Section-6 moral).

Runs the same sqrt(d) latency-hiding idea in both computation models on
uniform-delay hosts, sweeping d:

* **database model** (Theorem 4): only processors holding a replica of
  database ``b_i`` can compute column ``i``, so the overlapping block
  assignment *recomputes* boundary regions — ~2.7 copies per pebble;
* **dataflow model** (companion paper [2]): any processor can compute
  any pebble, so the boundary trapezoids are computed once and
  *shipped* — redundancy exactly 1.0.

Both achieve slowdown ~ sqrt(d); the difference is pure redundancy,
which is the quantitative content of "it is easier to overcome
latencies in dataflow types of computations".

Run:  python examples/dataflow_vs_database.py
"""

from repro.analysis.asciiplot import ascii_bars, ascii_plot
from repro.analysis.report import print_table
from repro.core.dataflow import simulate_dataflow
from repro.core.uniform import simulate_uniform


def main() -> None:
    d_values = [4, 16, 64, 256, 1024]
    rows = []
    df_slows, db_slows = [], []
    for d in d_values:
        df = simulate_dataflow(6, d, verify=(d <= 64))
        db = simulate_uniform(6, d, steps=df.steps, verify=False)
        df_slows.append(df.slowdown)
        db_slows.append(db.slowdown)
        rows.append(
            {
                "d": d,
                "dataflow slowdown": round(df.slowdown, 1),
                "database slowdown": round(db.slowdown, 1),
                "dataflow redundancy": df.redundancy,
                "database redundancy": round(
                    db.exec_result.stats.pebbles / (db.assignment.m * db.steps), 2
                ),
            }
        )
    print_table(rows, title="Same sqrt(d) slowdown, very different redundancy")

    print()
    print(
        ascii_plot(
            d_values,
            {"dataflow": df_slows, "database": db_slows, "sqrt(d)": [d**0.5 for d in d_values]},
            width=56,
            height=12,
            title="slowdown vs d (log-log) - both track sqrt(d)",
        )
    )

    print("\nwork per distinct pebble at d=1024:")
    print(
        ascii_bars(
            ["dataflow", "database"],
            [rows[-1]["dataflow redundancy"], rows[-1]["database redundancy"]],
            unit="x",
        )
    )
    print(
        "\nDataflow pebbles migrate; database pebbles are pinned to their "
        "replicas. The paper's Theorems 9-10 show the pinning is "
        "fundamental: without redundant replicas the slowdown jumps to "
        "d_max (run examples/lower_bound_tour.py)."
    )


if __name__ == "__main__":
    main()
