#!/usr/bin/env python
"""Plan the OVERLAP configuration for *your* NOW.

Theorem 3 leaves one knob to the operator: the block factor ``beta``
(databases per processor).  The planner reads the killed/labelled
interval tree of a host — no simulation — and predicts the per-row
cost curve: ``2 beta`` compute against the binding boundary's
``delay / (overlap * beta)`` latency charge.  This example plans three
archetypal hosts, then measures the true sweep to show the prediction
landing on (or next to) the measured optimum.

Run:  python examples/plan_your_now.py
"""

from repro.analysis.asciiplot import ascii_plot
from repro.analysis.planner import plan_block_factor
from repro.analysis.report import print_table
from repro.core.overlap import simulate_overlap
from repro.machine.host import HostArray
from repro.topology.presets import campus, mixed_now


def main() -> None:
    delays = [1] * 127
    delays[63] = 512
    hosts = [HostArray(delays, "outlier512"), campus(96), mixed_now(96, seed=1)]
    betas = [1, 2, 4, 8, 16, 32]

    for host in hosts:
        plan = plan_block_factor(host, candidates=betas)
        measured = {
            b: simulate_overlap(host, steps=16, block=b, verify=False).slowdown
            for b in betas
        }
        bb = plan.binding_boundary
        print(f"\n===== {host.name}  (d_ave={host.d_ave:.1f}, d_max={host.d_max}) =====")
        print(
            f"binding boundary: depth {bb.depth}, delay {bb.delay}, "
            f"shared columns {bb.overlap:g}"
        )
        print(f"planner recommends beta = {plan.beta}")
        print()
        print(
            ascii_plot(
                betas,
                {
                    "predicted": [plan.predicted[b] for b in betas],
                    "measured": [measured[b] for b in betas],
                },
                width=48,
                height=10,
                title="per-step cost vs beta (log-log)",
            )
        )
        rows = [
            {
                "beta": b,
                "predicted": round(plan.predicted[b], 1),
                "measured": round(measured[b], 1),
            }
            for b in betas
        ]
        print()
        print_table(rows)

    print(
        "\nThe U-shape is the paper's trade: bigger replicas hide longer "
        "latencies but cost more compute per row; Theorem 3's "
        "beta = d_ave log^3 n is the asymptotic minimiser, and the planner "
        "finds the finite-size one."
    )


if __name__ == "__main__":
    main()
