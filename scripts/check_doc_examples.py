#!/usr/bin/env python
"""Execute the fenced ``python`` code blocks in the documentation.

Documentation examples rot silently: an API rename leaves every test
green while the README teaches a signature that no longer exists.
This script makes the docs part of the test surface — every fenced
block whose info string is exactly ``python`` is extracted and run in
its own interpreter, so each block must be **self-contained** (its own
imports, its own data).

* Blocks tagged with anything else (``bash``, ``text``, or
  ``python no-run`` for illustrative fragments) are skipped.
* Blocks run with the repository's ``src/`` on ``PYTHONPATH`` and a
  throwaway working directory, so examples that write files cannot
  litter the checkout.
* A failing block reports its file, the line of its opening fence and
  the interpreter's stderr.

Usage::

    python scripts/check_doc_examples.py            # README.md + docs/*.md
    python scripts/check_doc_examples.py docs/API.md
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"^(`{3,})(.*)$")

#: Per-block wall clamp; doc examples are meant to be skim-runnable.
TIMEOUT_S = 240


def default_files() -> list[pathlib.Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def extract_blocks(path: pathlib.Path) -> list[tuple[int, str]]:
    """``(first fence line number, source)`` for every ``python`` block."""
    blocks: list[tuple[int, str]] = []
    fence: str | None = None
    collect = False
    start = 0
    buf: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = _FENCE.match(line.strip())
        if fence is None:
            if m:
                fence = m.group(1)
                info = m.group(2).strip()
                collect = info == "python"
                start = lineno
                buf = []
        elif m and m.group(1).startswith(fence) and not m.group(2).strip():
            if collect:
                blocks.append((start, "\n".join(buf) + "\n"))
            fence = None
        else:
            buf.append(line)
    return blocks


def run_block(source: str, workdir: str) -> subprocess.CompletedProcess:
    env = {
        "PYTHONPATH": str(REPO_ROOT / "src"),
        "PATH": "/usr/bin:/bin:/usr/local/bin",
    }
    return subprocess.run(
        [sys.executable, "-c", source],
        cwd=workdir,
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
    )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    files = [pathlib.Path(a) for a in argv] if argv else default_files()
    total = failures = 0
    for path in files:
        rel = path.resolve().relative_to(REPO_ROOT)
        for lineno, source in extract_blocks(path):
            total += 1
            with tempfile.TemporaryDirectory() as workdir:
                proc = run_block(source, workdir)
            status = "ok" if proc.returncode == 0 else "FAIL"
            print(f"[doc-examples] {rel}:{lineno} {status}")
            if proc.returncode != 0:
                failures += 1
                indented = "\n".join(
                    "    " + l for l in (proc.stderr or proc.stdout).splitlines()
                )
                print(indented, file=sys.stderr)
    print(f"[doc-examples] {total - failures}/{total} block(s) passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
