#!/usr/bin/env python
"""PR-acceptance gate over the ``BENCH_*.json`` artifacts.

Run after ``benchmarks/bench_sweep.py``, ``bench_dense.py``,
``bench_delta.py``, ``bench_service.py`` and ``bench_racing.py`` (CI
does; see the ``bench-smoke`` job).  Checks, in order:

1. **sweep speedup** — with >= 4 workers on a >= 4-CPU machine, the
   parallel sweep must not be slower than serial (``speedup >= 1.0``;
   the parallel-regression gate).  Skipped honestly on smaller or
   oversubscribed machines (the sweep section arrives smoke-tagged
   when ``cpus < workers``), where compute-bound parallelism cannot
   win.
2. **engine ratio** — the dense fault-free tier must be >= 3x the
   greedy engine (``engines.dense_over_greedy``).  A single-core
   property, so it applies on every machine, smoke or not.
3. **absolute throughput** — executor steps/sec must clear a coarse
   floor, but **only for non-smoke records**: entries tagged
   ``"smoke": true`` come from CI-sized grids whose absolute numbers
   are meaningless, and are ignored rather than misread as
   regressions.
4. **per-topology engine ratios** — ``BENCH_dense.json`` must show
   the dense tier >= 3x greedy on the *ring* and *graph* sections,
   and the *line* section must not regress below 10% under its
   recorded 6.96x (>= 6.26x; relaxed to the 3x floor on smoke
   records, whose small workloads blunt the vectorisation win).
5. **faulted engine ratios** — the ``faulted`` section of
   ``BENCH_dense.json`` must show the segmented
   :class:`FaultedDenseExecutor` >= 2x greedy on *line*, *ring* and
   *graph* sub-records (scalar fault handling and per-boundary
   checkpoints eat into the vectorisation win, hence the lower
   floor — it applies smoke or not, like every ratio gate).
6. **delta replay** — ``BENCH_delta.json`` must show the checkpoint
   suffix-replay path >= 2x faster than the full-recompute miss path
   on the one-knob edit grid (>= 1.2x on smoke records, whose tiny
   runs spend comparatively more time in cache IO), with every edit
   served by a replay (zero fallbacks) and the replayed rows asserted
   identical to full recomputes.
7. **service latency** — ``BENCH_service.json`` must show the
   in-memory cache-hit p50 >= 20x cheaper than a cold-miss p50, all
   duplicate submissions coalesced onto exactly one execution, and
   coalesced == independent response bytes (the service tier's
   "serving is essentially free" contract; the ratio applies smoke or
   not, since both sides shrink together).
8. **tail-latency policies** — ``BENCH_racing.json`` must show
   redundant-issue racing >= 1.25x better p99 step latency than
   single-issue on grid average over the high-jitter/high-drop grid
   (never worse on any point), work stealing never worse than the
   static assignment on every skewed seed, value digests identical on
   both grids, and the policy sweep rows identical across worker
   counts.  The ratio gates apply smoke or not — both sides of each
   comparison shrink together.
9. **differential tests** — the dense-vs-greedy bit-identical suites
   (``tests/test_dense.py`` fault-free, ``tests/test_dense_faults.py``
   faulted), the delta-replay-vs-recompute suite
   (``tests/test_delta.py``) and the policy-vs-single-issue suite
   (``tests/test_racing.py``) must run with zero skips; a skipped
   differential test would let the fast path drift from the reference
   silently.  ``--no-tests`` omits this (e.g. when pytest is absent).

Exit status 0 = all gates pass.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Coarse floor for non-smoke executor throughput: an order of magnitude
# under the measured dense rate, so it only trips on catastrophic
# hot-path regressions, not machine-to-machine noise.
MIN_STEPS_PER_SEC = 20_000.0
MIN_DENSE_OVER_GREEDY = 3.0
# Line-section regression floor: the recorded full-workload ratio is
# 6.96x (BENCH_dense.json); allow 10% machine-to-machine noise.
MIN_LINE_OVER_GREEDY = 6.26
# Segmented faulted tier: scalar fault handling and per-boundary
# checkpoints eat into the vectorisation win, so the floor is lower
# than the fault-free 3x.
MIN_FAULTED_OVER_GREEDY = 2.0
# Delta suffix-replay over the full-recompute miss path on the
# one-knob edit grid; smoke workloads are cache-IO-bound, so only a
# sanity floor applies there.
MIN_DELTA_SPEEDUP = 2.0
MIN_DELTA_SPEEDUP_SMOKE = 1.2
# In-memory cache-hit p50 vs cold-miss p50 on the service front-end; a
# pure ratio of two latencies measured in the same run, so it applies
# smoke or not.
MIN_SERVICE_HIT_RATIO = 20.0
# Racing p99 vs single-issue p99 on the high-jitter grid: 1.25x better
# on grid average (racing p99 <= 0.8x single), never worse per point
# (shared-segment drops stall both replicas, so the worst point may
# degrade to parity — not below it).
MIN_RACING_P99_MEAN = 1.25
MIN_RACING_P99_POINT = 1.0


def _fail(msg: str) -> bool:
    print(f"[bench_compare] FAIL: {msg}", file=sys.stderr)
    return True


def check_sweep(payload: dict) -> bool:
    sweep = payload.get("sweep", {})
    cpus = payload.get("cpus", 1)
    workers = sweep.get("workers", 0)
    speedup = sweep.get("speedup")
    if sweep.get("smoke"):
        print(
            f"[bench_compare] sweep section smoke-tagged "
            f"(cpus={cpus}, workers={workers}) — speedup gate skipped"
        )
    elif cpus >= 4 and workers >= 4:
        if speedup is None or speedup < 1.0:
            return _fail(
                f"sweep speedup {speedup}x < 1.0x at {workers} workers on a "
                f"{cpus}-cpu machine — the parallel path is a regression"
            )
        print(f"[bench_compare] sweep speedup {speedup}x at {workers} workers: ok")
    else:
        print(
            f"[bench_compare] sweep speedup gate skipped "
            f"(cpus={cpus}, workers={workers})"
        )
    if not sweep.get("results_identical", False):
        return _fail("sweep did not assert parallel == serial results")
    return False


def check_engines(payload: dict) -> bool:
    engines = payload.get("engines")
    if not engines:
        return _fail("no 'engines' section — dense-vs-greedy ratio unmeasured")
    ratio = engines.get("dense_over_greedy")
    if ratio is None or ratio < MIN_DENSE_OVER_GREEDY:
        return _fail(
            f"dense engine only {ratio}x greedy (< {MIN_DENSE_OVER_GREEDY}x)"
        )
    print(f"[bench_compare] dense {ratio}x greedy: ok")
    return False


def check_dense(payload: dict) -> bool:
    """Per-topology engine-ratio gates over ``BENCH_dense.json``."""
    sections = payload.get("sections")
    if not sections:
        return _fail("BENCH_dense.json has no 'sections' — nothing measured")
    failed = False
    for name in ("line", "ring", "graph"):
        rec = sections.get(name)
        if not rec:
            failed = _fail(f"BENCH_dense.json missing the '{name}' section")
            continue
        ratio = rec.get("dense_over_greedy")
        floor = MIN_DENSE_OVER_GREEDY
        if name == "line" and not rec.get("smoke"):
            floor = MIN_LINE_OVER_GREEDY
        if ratio is None or ratio < floor:
            failed = _fail(
                f"dense/{name}: only {ratio}x greedy (< {floor}x)"
            )
        else:
            print(f"[bench_compare] dense/{name}: {ratio}x greedy: ok")
    return failed


def check_faulted(payload: dict) -> bool:
    """Faulted-tier engine-ratio gates over ``BENCH_dense.json``.

    A missing ``faulted`` section fails loudly: silently skipping it
    would let the segmented executor regress to (or below) greedy
    speed without any gate noticing.
    """
    faulted = (payload.get("sections") or {}).get("faulted")
    if not faulted:
        return _fail(
            "BENCH_dense.json has no 'faulted' section — the segmented "
            "fault-path speedup is unmeasured"
        )
    failed = False
    for name in ("line", "ring", "graph"):
        rec = faulted.get(name)
        if not rec:
            failed = _fail(f"faulted section missing the '{name}' record")
            continue
        ratio = rec.get("dense_over_greedy")
        if ratio is None or ratio < MIN_FAULTED_OVER_GREEDY:
            failed = _fail(
                f"faulted/{name}: only {ratio}x greedy "
                f"(< {MIN_FAULTED_OVER_GREEDY}x)"
            )
        else:
            events = rec.get("fault_events", "?")
            print(
                f"[bench_compare] faulted/{name}: {ratio}x greedy "
                f"({events} fault events): ok"
            )
    return failed


def check_delta(payload: dict) -> bool:
    """Suffix-replay gates over ``BENCH_delta.json``.

    Three properties, all load-bearing: the replay must actually be
    faster than recomputing (else the machinery is dead weight), every
    edit in the one-knob grid must be served by a replay (a fallback
    means the blast-radius rules or the checkpoint coverage silently
    degraded), and the rows must be bit-identical to full recomputes.
    """
    rec = (payload.get("sections") or {}).get("one_knob")
    if not rec:
        return _fail(
            "BENCH_delta.json has no 'one_knob' section — the delta "
            "replay path is unmeasured"
        )
    failed = False
    floor = MIN_DELTA_SPEEDUP_SMOKE if rec.get("smoke") else MIN_DELTA_SPEEDUP
    speedup = rec.get("speedup")
    if speedup is None or speedup < floor:
        failed = _fail(
            f"delta replay only {speedup}x over full recompute (< {floor}x)"
        )
    else:
        print(f"[bench_compare] delta replay {speedup}x full recompute: ok")
    hits = rec.get("delta_hits", 0)
    grid = rec.get("grid", 0)
    fallbacks = rec.get("delta_fallbacks", 0)
    if hits < grid or fallbacks:
        failed = _fail(
            f"delta grid: {hits}/{grid} replays, {fallbacks} fallback(s) "
            "— every one-knob edit must be served by a suffix replay"
        )
    else:
        print(f"[bench_compare] delta grid: {hits}/{grid} replays, 0 fallbacks: ok")
    if not rec.get("results_identical", False):
        failed = _fail("delta run did not assert replayed == recomputed rows")
    return failed


def check_service(payload: dict) -> bool:
    """Service-front-end gates over ``BENCH_service.json``.

    Three properties: warm serving must be essentially free relative to
    a cold miss (the latency ratio), duplicate in-flight submissions
    must coalesce onto exactly one execution, and a coalesced response
    must be byte-identical to one computed independently (a coalescing
    or caching bug that changed bytes would silently poison every
    rider).
    """
    rec = (payload.get("sections") or {}).get("service")
    if not rec:
        return _fail(
            "BENCH_service.json has no 'service' section — the request "
            "path is unmeasured"
        )
    failed = False
    ratio = rec.get("hit_speedup_p50")
    if ratio is None or ratio < MIN_SERVICE_HIT_RATIO:
        failed = _fail(
            f"service cache-hit p50 only {ratio}x cheaper than a cold "
            f"miss (< {MIN_SERVICE_HIT_RATIO}x)"
        )
    else:
        print(
            f"[bench_compare] service hit p50 {rec.get('hit_p50_ms')}ms vs "
            f"miss p50 {rec.get('miss_p50_ms')}ms ({ratio}x): ok"
        )
    execs = rec.get("coalesced_executions")
    waiters = rec.get("coalesced_waiters", "?")
    if execs != 1:
        failed = _fail(
            f"service: {waiters} duplicate submissions ran {execs} "
            "executions (expected exactly 1)"
        )
    else:
        print(
            f"[bench_compare] service coalescing: {waiters} waiters -> "
            "1 execution: ok"
        )
    if not rec.get("results_identical", False):
        failed = _fail(
            "service: coalesced and independent submissions were not "
            "byte-identical"
        )
    rps = rec.get("requests_per_sec")
    if rps is not None:
        print(f"[bench_compare] service sustained {rps:,.0f} req/s (informational)")
    return failed


def check_racing(payload: dict) -> bool:
    """Tail-latency policy gates over ``BENCH_racing.json``.

    Four properties: racing must actually tame the tail it exists for
    (the p99 ratio on the high-jitter grid), stealing must never make
    a skewed assignment worse (else the rebalance is a liability),
    both must be digest-identical to their single-issue ground truth
    (a policy may change *when* pebbles complete, never their values),
    and the policy sweep must be bit-identical at any worker count.
    """
    sections = payload.get("sections") or {}
    failed = False
    racing = sections.get("racing")
    if not racing:
        return _fail(
            "BENCH_racing.json has no 'racing' section — the tail-latency "
            "win is unmeasured"
        )
    mean = racing.get("p99_ratio_mean")
    worst = racing.get("p99_ratio_min")
    if mean is None or mean < MIN_RACING_P99_MEAN:
        failed = _fail(
            f"racing p99 only {mean}x better than single-issue on grid "
            f"average (< {MIN_RACING_P99_MEAN}x)"
        )
    elif worst is None or worst < MIN_RACING_P99_POINT:
        failed = _fail(
            f"racing p99 {worst}x on the worst grid point "
            f"(< {MIN_RACING_P99_POINT}x — racing made a point worse)"
        )
    else:
        print(
            f"[bench_compare] racing p99 {mean}x single-issue on average "
            f"(worst point {worst}x) over {racing.get('grid', '?')} "
            "high-jitter points: ok"
        )
    if not racing.get("digest_identical", False):
        failed = _fail("racing grid did not assert digest identity")
    clean = sections.get("clean")
    if clean:
        print(
            f"[bench_compare] racing redundancy bill: "
            f"{clean.get('message_ratio')}x messages on clean links "
            "(informational)"
        )
    stealing = sections.get("stealing")
    if not stealing:
        failed = _fail(
            "BENCH_racing.json has no 'stealing' section — the rebalance "
            "is unmeasured"
        )
    else:
        if not stealing.get("never_worse", False):
            failed = _fail(
                "stealing made a skewed seed worse than the static "
                "assignment"
            )
        else:
            print(
                f"[bench_compare] stealing never worse, "
                f"{stealing.get('speedup_mean')}x mean speedup over "
                f"{stealing.get('grid', '?')} skewed seeds: ok"
            )
        if not stealing.get("digest_identical", False):
            failed = _fail("stealing grid did not assert digest identity")
    workers = sections.get("workers")
    if not workers or not workers.get("results_identical", False):
        failed = _fail(
            "policy sweep rows were not asserted identical across worker "
            "counts"
        )
    else:
        print(
            f"[bench_compare] policy sweep identical at "
            f"{workers.get('workers')} workers: ok"
        )
    return failed


def check_throughput(payload: dict) -> bool:
    failed = False
    records = {"executor": payload.get("executor", {})}
    engines = payload.get("engines", {})
    for name in ("greedy", "dense"):
        if isinstance(engines.get(name), dict):
            records[f"engines.{name}"] = engines[name]
    for name, rec in records.items():
        sps = rec.get("steps_per_sec")
        if sps is None:
            continue
        if rec.get("smoke"):
            print(
                f"[bench_compare] {name}: smoke-tagged record "
                f"({sps:,.0f} steps/sec) — absolute floor skipped"
            )
            continue
        if sps < MIN_STEPS_PER_SEC:
            failed = _fail(
                f"{name}: {sps:,.0f} steps/sec < floor {MIN_STEPS_PER_SEC:,.0f}"
            )
        else:
            print(f"[bench_compare] {name}: {sps:,.0f} steps/sec: ok")
    return failed


def check_differential_tests() -> bool:
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        "tests/test_dense.py",
        "tests/test_dense_faults.py",
        "tests/test_delta.py",
        "tests/test_racing.py",
        "-q",
        "-rs",
    ]
    env_path = str(REPO_ROOT / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        cmd, cwd=REPO_ROOT, env=env, capture_output=True, text=True
    )
    out = proc.stdout + proc.stderr
    if proc.returncode != 0:
        sys.stderr.write(out)
        return _fail("dense-vs-greedy differential tests failed")
    skipped = re.search(r"(\d+) skipped", out)
    if skipped and int(skipped.group(1)) > 0:
        sys.stderr.write(out)
        return _fail(
            f"{skipped.group(1)} differential test(s) skipped — the dense "
            "tier is not being checked against the reference"
        )
    # A suite that collects nothing is as bad as a skipped one.
    if "[100%]" not in out and not re.search(r"\d+ passed", out):
        sys.stderr.write(out)
        return _fail("differential test suite ran no tests")
    print("[bench_compare] differential tests: ran, zero skips")
    return False


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench",
        default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="path to BENCH_sweep.json (default: repo root)",
    )
    parser.add_argument(
        "--dense",
        default=str(REPO_ROOT / "BENCH_dense.json"),
        help="path to BENCH_dense.json (default: repo root)",
    )
    parser.add_argument(
        "--delta",
        default=str(REPO_ROOT / "BENCH_delta.json"),
        help="path to BENCH_delta.json (default: repo root)",
    )
    parser.add_argument(
        "--service",
        default=str(REPO_ROOT / "BENCH_service.json"),
        help="path to BENCH_service.json (default: repo root)",
    )
    parser.add_argument(
        "--racing",
        default=str(REPO_ROOT / "BENCH_racing.json"),
        help="path to BENCH_racing.json (default: repo root)",
    )
    parser.add_argument(
        "--no-tests",
        action="store_true",
        help="skip running the differential test suite",
    )
    args = parser.parse_args(argv)

    path = pathlib.Path(args.bench)
    if not path.exists():
        _fail(f"{path} not found — run benchmarks/bench_sweep.py first")
        return 1
    payload = json.loads(path.read_text())
    if payload.get("smoke"):
        print("[bench_compare] smoke artifact: absolute floors will be skipped")

    failed = False
    failed |= check_sweep(payload)
    failed |= check_engines(payload)
    failed |= check_throughput(payload)
    dense_path = pathlib.Path(args.dense)
    if not dense_path.exists():
        failed |= _fail(
            f"{dense_path} not found — run benchmarks/bench_dense.py first"
        )
    else:
        dense_payload = json.loads(dense_path.read_text())
        failed |= check_dense(dense_payload)
        failed |= check_faulted(dense_payload)
    delta_path = pathlib.Path(args.delta)
    if not delta_path.exists():
        failed |= _fail(
            f"{delta_path} not found — run benchmarks/bench_delta.py first"
        )
    else:
        failed |= check_delta(json.loads(delta_path.read_text()))
    service_path = pathlib.Path(args.service)
    if not service_path.exists():
        failed |= _fail(
            f"{service_path} not found — run benchmarks/bench_service.py first"
        )
    else:
        failed |= check_service(json.loads(service_path.read_text()))
    racing_path = pathlib.Path(args.racing)
    if not racing_path.exists():
        failed |= _fail(
            f"{racing_path} not found — run benchmarks/bench_racing.py first"
        )
    else:
        failed |= check_racing(json.loads(racing_path.read_text()))
    if not args.no_tests:
        failed |= check_differential_tests()

    if failed:
        return 1
    print("[bench_compare] all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
